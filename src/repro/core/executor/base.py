"""Backend interface: *where* the scan kernel's steps run.

A backend binds the algorithm (one shared :class:`ScanKernel`) to an
execution substrate. The library ships four:

- :class:`~repro.core.executor.serial.SerialBackend` — a plain loop,
  the reference oracle;
- :class:`~repro.core.executor.threads.ThreadBackend` — real host
  threads, queries fanned out across a persistent pool;
- :class:`~repro.core.executor.process.ProcessBackend` — persistent
  worker processes scanning shared-memory shard layouts with
  work-stealing scheduling (multi-core without the GIL);
- :class:`~repro.core.executor.simulated.SimulatedBackend` — the
  discrete-event cluster, charging compute/comm to machine timelines.

Adding another substrate (async server, RPC fan-out) is a one-file
change: subclass :class:`Backend`, reuse the kernel.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.core.executor.kernel import ScanKernel, collect_results
from repro.core.partition import PartitionPlan, build_plan
from repro.core.results import SearchResult


class Backend(abc.ABC):
    """Uniform search interface over one ``(index, plan)`` pair.

    The contract every implementation is tested on: ``search`` returns
    byte-identical ids and distances to every other backend with the
    same parameters — the substrate may only change *when* work runs,
    never *what* is computed.
    """

    #: Short name used by ``HarmonyConfig.backend`` / ``--backend``.
    name: str = "abstract"

    @abc.abstractmethod
    def search(
        self,
        queries: np.ndarray,
        k: int,
        nprobe: int = 1,
        filter_labels: "np.ndarray | list[int] | None" = None,
    ) -> SearchResult:
        """Pruned top-``k`` search for a query batch."""

    def close(self) -> None:
        """Release execution resources (pools, shared memory).

        Idempotent, and a no-op for backends without persistent
        resources; a closed backend may lazily re-acquire resources on
        the next ``search()``.
        """


def default_plan(index: "IVFFlatIndex") -> PartitionPlan:
    """Single-shard plan with up to 4 dimension slices (pruning-friendly)."""
    n_blocks = min(4, index.dim)
    return build_plan(
        index,
        n_machines=n_blocks,
        n_vector_shards=1,
        n_dim_blocks=n_blocks,
    )


class HostBackend(Backend):
    """Shared machinery of the backends that run on the host (no sim).

    Args:
        index: trained+populated IVF index.
        plan: partition plan; defaults to :func:`default_plan`.
        prewarm_size: heap-seeding candidates per query (0 disables
            pruning entirely).
        enable_pruning: toggle lossless early-stop pruning.
        batch_queries: route multi-query batches through the kernel's
            fused shard-major ``search_batch`` path (bitwise identical
            to the per-query loop); False forces one ``search_one``
            call per query.
        use_packed_base: cache and gather from the shard-major packed
            layout instead of fancy-indexing the full base matrix.
        scan_precision: ``"fp32"`` or ``"sq8"`` (SQ8 candidate
            generation with exact float32 re-ranking — byte-identical
            results, a quarter of the candidate-scan bandwidth).
        scan_timeout: per-task straggler watchdog in wall-clock
            seconds. ``None`` (default) disables it; when set, a shard
            task exceeding the timeout is speculatively re-issued
            (results are deduplicated, so hedged duplicates stay
            byte-identical), escalating exponentially across
            ``scan_retries`` attempts — the host mirror of the sim
            pipeline's retry/hedge semantics.
        scan_retries: re-issues per straggling task before the
            supervisor gives up (degraded mode then abandons the task
            with coverage accounting; otherwise it keeps waiting).
        delta_compact_ratio / auto_compact: LSM write-path knobs
            forwarded to the kernel (see
            :class:`~repro.core.executor.kernel.ScanKernel`).
    """

    def __init__(
        self,
        index: "IVFFlatIndex",
        plan: PartitionPlan | None = None,
        prewarm_size: int = 32,
        enable_pruning: bool = True,
        batch_queries: bool = True,
        use_packed_base: bool = True,
        scan_precision: str = "fp32",
        scan_timeout: "float | None" = None,
        scan_retries: int = 3,
        delta_compact_ratio: float = 0.25,
        auto_compact: bool = True,
    ) -> None:
        if not index.is_trained:
            raise RuntimeError("backend requires a trained index")
        if scan_timeout is not None and scan_timeout <= 0:
            raise ValueError(
                f"scan_timeout must be positive or None, got {scan_timeout}"
            )
        if scan_retries < 0:
            raise ValueError(
                f"scan_retries must be non-negative, got {scan_retries}"
            )
        from repro.cluster.host_faults import HostFaultCounters

        self.index = index
        self.plan = plan if plan is not None else default_plan(index)
        self.batch_queries = batch_queries
        self.scan_timeout = scan_timeout
        self.scan_retries = int(scan_retries)
        #: Optional :class:`repro.cluster.host_faults.HostFaultInjector`
        #: driving deterministic chaos through this backend. None
        #: (default) keeps the hot path injection-free.
        self.chaos = None
        #: Recovery activity (respawns / requeues / timeouts /
        #: abandons) since the last ``fault_counters.take()``.
        self.fault_counters = HostFaultCounters()
        #: Optional repro.obs.Tracer recording wall-clock spans, one
        #: lane per host worker thread. None (default) keeps the
        #: untraced path free of instrumentation.
        self.tracer = None
        #: Candidates re-ranked against fp32 rows by the most recent
        #: search() call (always 0 on the fp32 path).
        self.last_rerank_count = 0
        self.kernel = ScanKernel(
            index,
            self.plan,
            prewarm_size=prewarm_size,
            enable_pruning=enable_pruning,
            use_packed_base=use_packed_base,
            scan_precision=scan_precision,
            delta_compact_ratio=delta_compact_ratio,
            auto_compact=auto_compact,
        )

    @property
    def prewarm_size(self) -> int:
        return self.kernel.prewarm_size

    @property
    def enable_pruning(self) -> bool:
        return self.kernel.enable_pruning

    @property
    def scan_precision(self) -> str:
        return self.kernel.scan_precision

    def layout_nbytes(self) -> int:
        """Resident bytes of the packed shard layout currently cached.

        ``0`` when packing is disabled or no layout has been built yet
        — reported as the ``harmony_layout_bytes`` gauge so memory
        accounting (Table 5) sees the packed copy.
        """
        packed = self.kernel._packed
        return 0 if packed is None else int(packed.nbytes)

    def code_nbytes(self) -> int:
        """Resident bytes of the packed SQ8 code blocks (0 on fp32).

        Reported as the ``harmony_code_bytes`` gauge — the compact
        representation candidate scans actually stream on the sq8
        path, next to ``harmony_layout_bytes`` for the whole layout.
        """
        packed = self.kernel._packed
        return 0 if packed is None else int(packed.codes_nbytes)

    def search(
        self,
        queries: np.ndarray,
        k: int,
        nprobe: int = 1,
        filter_labels: "np.ndarray | list[int] | None" = None,
        skip_shards: "frozenset[int] | set[int] | None" = None,
        coverage: np.ndarray | None = None,
    ) -> SearchResult:
        """Pruned top-``k`` search, exact w.r.t. a single-node IVF scan.

        ``skip_shards`` / ``coverage`` are the degraded-mode hooks (see
        :meth:`ScanKernel.search_one`): skipped shards' candidates are
        counted but never scored, so host backends serve the same
        coverage-flagged partial results the simulator does.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        kernel = self.kernel
        tracer = self.tracer
        kernel.tracer = tracer  # per-(shard, slice) wall spans when set
        rerank_before = kernel.rerank_candidates_total
        queries = kernel.prepare_queries(queries)
        if tracer is None:
            probes = self.index.probe(queries, nprobe)
        else:
            with tracer.wall_span("route", "computation", n=queries.shape[0]):
                probes = self.index.probe(queries, nprobe)
        allowed = self.index.allowed_mask(filter_labels)
        nq = queries.shape[0]
        if self.batch_queries and nq > 1:
            heaps = kernel.search_batch(
                queries, probes, k, allowed,
                map_groups=self._traced_group_mapper(),
                skip_shards=skip_shards,
                coverage=coverage,
            )
            self.last_rerank_count = (
                kernel.rerank_candidates_total - rerank_before
            )
            return collect_results(heaps, k)
        heaps = [None] * nq

        def run_query(i: int) -> None:
            heaps[i] = kernel.search_one(
                i, queries[i], probes[i], k, allowed,
                skip_shards=skip_shards, coverage=coverage,
            )

        if tracer is None:
            self._map(run_query, nq)
        else:
            def traced_query(i: int) -> None:
                with tracer.wall_span("query", "computation", query=i):
                    run_query(i)

            self._map(traced_query, nq)
        self.last_rerank_count = (
            kernel.rerank_candidates_total - rerank_before
        )
        return collect_results(heaps, k)

    @abc.abstractmethod
    def _map(self, fn, nq: int) -> None:
        """Run ``fn(i)`` for every query index; substrate-specific."""

    def _group_mapper(self):
        """Optional concurrent executor for batched shard-groups.

        Returns ``fn(task, shards)`` running ``task(shard)`` for every
        shard, or None to process groups sequentially in shard order
        (the serial default).
        """
        return None

    def _traced_group_mapper(self):
        """The group mapper, wrapping each shard task in a wall span.

        With no tracer attached this is exactly ``_group_mapper()``;
        with one, each shard-group's wall-clock interval is recorded
        on the executing thread's lane (results are unchanged — the
        backend contract fixes *what* is computed).
        """
        mapper = self._group_mapper()
        tracer = self.tracer
        if tracer is None:
            return mapper

        def traced(task, shards) -> None:
            def traced_task(shard) -> None:
                with tracer.wall_span(
                    "shard-group", "computation", shard=int(shard)
                ):
                    task(shard)

            if mapper is None:
                for shard in shards:
                    traced_task(shard)
            else:
                mapper(traced_task, shards)

        return traced


BACKENDS: dict[str, str] = {
    "sim": "repro.core.executor.simulated:SimulatedBackend",
    "thread": "repro.core.executor.threads:ThreadBackend",
    "serial": "repro.core.executor.serial:SerialBackend",
    "process": "repro.core.executor.process:ProcessBackend",
}


def resolve_backend(name: str) -> type:
    """Map a backend name (``sim``/``thread``/``serial``/``process``)
    to its class."""
    try:
        target = BACKENDS[str(name).lower()]
    except KeyError as exc:
        supported = ", ".join(sorted(BACKENDS))
        raise ValueError(
            f"unknown backend {name!r}; supported backends: {supported}"
        ) from exc
    module_name, _, attr = target.partition(":")
    import importlib

    return getattr(importlib.import_module(module_name), attr)
