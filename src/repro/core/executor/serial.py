"""Serial backend: the reference oracle.

Runs the shared :class:`~repro.core.executor.kernel.ScanKernel` in a
plain Python loop — no threads, no simulation, no scheduling freedom.
Because nothing about its execution order is configurable, its output
is the fixed point the other backends (and
:func:`repro.validation.check_exactness`) are compared against.
"""

from __future__ import annotations

from repro.core.executor.base import HostBackend


class SerialBackend(HostBackend):
    """Single-threaded execution, shards and slices in canonical order.

    Multi-query batches route through the kernel's fused
    ``search_batch`` path by default (``batch_queries=False`` restores
    the strict one-``search_one``-per-query loop); both are bitwise
    identical by construction, and the equivalence tests pin that.

    With a ``tracer`` attached (see :class:`HostBackend`), every
    wall-clock span lands on a single lane — the caller's thread.
    """

    name = "serial"

    def _map(self, fn, nq: int) -> None:
        for i in range(nq):
            fn(i)
