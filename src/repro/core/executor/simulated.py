"""Simulated backend: the kernel inside the discrete-event cluster.

Wraps :class:`~repro.core.pipeline.PipelineEngine` — which is itself a
thin timing shell over the shared scan kernel — behind the uniform
:class:`~repro.core.executor.base.Backend` interface. Every kernel step
is charged to a simulated machine's timeline and every partial-result
hand-off to the network, so alongside the (byte-identical) answers the
backend produces the full :class:`~repro.core.results.ExecutionReport`
of the distributed execution.

Unlike the host backends, simulation keeps *per-query* stepping — the
timing model charges stages query by query — but it still reuses the
kernel's packed shard layout and the compacted scans, so its host-side
overhead drops with the same optimizations without perturbing any
simulated timing (charges depend only on candidate counts, which the
packed gather preserves exactly).
"""

from __future__ import annotations

import numpy as np

from repro.cluster.cluster import Cluster
from repro.core.config import HarmonyConfig
from repro.core.executor.base import Backend, default_plan
from repro.core.partition import PartitionPlan
from repro.core.results import ExecutionReport, SearchResult


class SimulatedBackend(Backend):
    """Discrete-event distributed execution of the scan kernel.

    Args:
        index: trained+populated IVF index.
        plan: partition plan; defaults to the same single-shard,
            4-slice plan the host backends use.
        cluster: simulated cluster; a default one sized to the plan is
            created when omitted.
        config: full deployment config; when omitted a minimal one is
            derived from the index, plan, and the keyword toggles.
        prewarm_size / enable_pruning: used only when ``config`` is
            omitted, mirroring the host backends' constructor.
    """

    name = "sim"

    def __init__(
        self,
        index: "IVFFlatIndex",
        plan: PartitionPlan | None = None,
        cluster: Cluster | None = None,
        config: HarmonyConfig | None = None,
        prewarm_size: int = 32,
        enable_pruning: bool = True,
        scan_precision: str = "fp32",
        memory_bandwidth: "float | None" = None,
    ) -> None:
        from repro.core.pipeline import PipelineEngine

        if plan is None:
            plan = default_plan(index)
        if config is None:
            config = HarmonyConfig(
                n_machines=plan.n_machines,
                nlist=index.nlist,
                metric=index.metric,
                prewarm_size=prewarm_size,
                enable_pruning=enable_pruning,
                scan_precision=scan_precision,
                memory_bandwidth=memory_bandwidth,
            )
        if cluster is None:
            cluster = Cluster(
                n_workers=plan.n_machines,
                memory_bandwidth=config.memory_bandwidth,
            )
        self.index = index
        self.plan = plan
        self.cluster = cluster
        self.config = config
        self.engine = PipelineEngine(
            index=index, plan=plan, cluster=cluster, config=config
        )
        self.last_report: ExecutionReport | None = None

    @property
    def kernel(self):
        return self.engine.kernel

    @property
    def tracer(self):
        """The attached ``repro.obs.Tracer``, or None (untraced).

        Forwards to the cluster so direct users get the same surface
        as the host backends: assign a tracer and every simulated
        charge becomes a span on its machine's lane.
        """
        return self.cluster.tracer

    @tracer.setter
    def tracer(self, tracer) -> None:
        self.cluster.tracer = tracer

    @property
    def metrics(self):
        """The attached ``repro.obs.MetricsRegistry``, or None."""
        return self.cluster.metrics

    @metrics.setter
    def metrics(self, registry) -> None:
        self.cluster.metrics = registry

    def search(
        self,
        queries: np.ndarray,
        k: int,
        nprobe: int = 1,
        filter_labels: "np.ndarray | list[int] | None" = None,
    ) -> SearchResult:
        """Search under simulation; the timing report lands in
        :attr:`last_report`."""
        result, report = self.engine.run(
            queries, k=k, nprobe=nprobe, filter_labels=filter_labels
        )
        self.last_report = report
        return result
