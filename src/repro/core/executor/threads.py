"""Thread backend: real host parallelism (no simulation).

In the batched path the unit of parallelism is a *shard-group* — all
queries touching one vector shard, processed as fused matrix-matrix
stages — so threads scale with the plan's shard count while each
stage stays a large GIL-releasing numpy call. Per-query heap merges
are serialized by the kernel's per-query locks; stale (looser)
threshold reads under concurrency only prune less, never wrongly,
because the pruning bound is lossless. In the per-query path
(``batch_queries=False`` or single-query batches) queries themselves
fan out across the pool. Results are byte-identical to the serial
backend regardless of thread count — that invariance, not raw speed,
is the contract this class is tested on.

The pool is created lazily on first use and reused across ``search()``
calls (constructing a ``ThreadPoolExecutor`` per call costs thread
spawns on every query batch); :meth:`ThreadBackend.close` releases it,
and a closed backend transparently re-creates the pool if searched
again.

Fault story (host-path robustness):

- With ``scan_timeout`` set, the per-query path supervises each query
  task through a future: a task that exceeds the (exponentially
  escalating) timeout is **hedged** — re-submitted to the pool — and
  whichever copy finishes first wins. ``kernel.search_one`` is pure
  (it builds a fresh heap, mutating no shared state), so a duplicate
  run computes the identical heap and the race is benign: results
  stay byte-identical.
- An attached :class:`~repro.cluster.host_faults.HostFaultInjector`
  can delay tasks (straggler emulation) or kill them at entry
  (:class:`~repro.cluster.host_faults.InjectedWorkerKill`); injected
  kills fire *before* any shared state is touched, so the supervisor
  simply re-runs the task — the thread-pool analogue of the process
  backend's requeue-and-respawn.
- The batched shard-group path supports delay and entry-kill
  injection (retried the same way) but not timeout hedging: group
  tasks merge into shared per-query heaps mid-flight, so duplicating
  one would double-push candidates. Straggler *hedging* therefore
  needs ``batch_queries=False`` or the process backend, whose tasks
  are hedge-safe by construction.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait

from repro.cluster.host_faults import InjectedWorkerKill, sleep_for_delay
from repro.core.executor.base import HostBackend
from repro.core.partition import PartitionPlan
from repro.util.retry import RetryPolicy


class ThreadBackend(HostBackend):
    """Multithreaded HARMONY-style pruned search on the host machine.

    Args:
        index: trained+populated IVF index.
        plan: partition plan; defaults to a single-shard plan with 4
            dimension slices (pruning-friendly).
        n_threads: worker threads (default: ``ThreadPoolExecutor``'s).
        prewarm_size: heap-seeding candidates per query (0 disables
            pruning entirely).
        enable_pruning: toggle lossless early-stop pruning.
        scan_timeout / scan_retries: straggler watchdog (see
            :class:`HostBackend`).

    With a ``tracer`` attached (see :class:`HostBackend`), wall-clock
    spans land on one lane per pool thread, so the exported timeline
    shows the actual shard-group / query interleaving across threads.
    """

    name = "thread"

    def __init__(
        self,
        index: "IVFFlatIndex",
        plan: PartitionPlan | None = None,
        n_threads: int | None = None,
        prewarm_size: int = 32,
        enable_pruning: bool = True,
        batch_queries: bool = True,
        use_packed_base: bool = True,
        scan_precision: str = "fp32",
        scan_timeout: "float | None" = None,
        scan_retries: int = 3,
        delta_compact_ratio: float = 0.25,
        auto_compact: bool = True,
    ) -> None:
        if n_threads is not None and n_threads <= 0:
            raise ValueError(f"n_threads must be positive, got {n_threads}")
        super().__init__(
            index,
            plan=plan,
            prewarm_size=prewarm_size,
            enable_pruning=enable_pruning,
            batch_queries=batch_queries,
            use_packed_base=use_packed_base,
            scan_precision=scan_precision,
            scan_timeout=scan_timeout,
            scan_retries=scan_retries,
            delta_compact_ratio=delta_compact_ratio,
            auto_compact=auto_compact,
        )
        self.n_threads = n_threads
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()

    def _ensure_thread_pool(self) -> ThreadPoolExecutor:
        """The persistent pool, created lazily and revived after close."""
        pool = self._pool
        if pool is None:
            with self._pool_lock:
                pool = self._pool
                if pool is None:
                    pool = ThreadPoolExecutor(max_workers=self.n_threads)
                    self._pool = pool
        return pool

    def close(self) -> None:
        """Shut the worker pool down. Idempotent; search() revives it."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
        super().close()

    def __enter__(self) -> "ThreadBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- chaos + supervision --------------------------------------------

    def _chaos_wrap(self, fn):
        """Wrap a task callable with chaos injection + kill retry.

        Injected kills fire at task entry (before any shared state is
        touched), so re-running the task is always safe; each retry is
        counted as a requeue. Delays time the task body and stretch it
        by the injected straggler factor.
        """
        chaos = self.chaos
        if chaos is None:
            return fn

        def wrapped(arg):
            for _ in range(self.scan_retries + 1):
                delay, kill = chaos.thread_task_event()
                if kill:
                    self.fault_counters.tasks_requeued += 1
                    continue  # re-run: the task body never started
                t0 = time.perf_counter()
                out = fn(arg)
                sleep_for_delay(delay, time.perf_counter() - t0)
                return out
            raise InjectedWorkerKill(
                "chaos kill kept firing beyond scan_retries"
            )

        return wrapped

    def _map(self, fn, nq: int) -> None:
        pool = self._ensure_thread_pool()
        fn = self._chaos_wrap(fn)
        if self.scan_timeout is None:
            list(pool.map(fn, range(nq)))
            return
        self._map_hedged(pool, fn, nq)

    def _map_hedged(self, pool, fn, nq: int) -> None:
        """Per-query supervision: hedge stragglers past the timeout.

        ``fn(i)`` must be idempotent — on this path it is
        ``kernel.search_one`` writing its (deterministic) heap into
        ``heaps[i]`` — so racing duplicates are benign. A pool thread
        cannot be killed, so after ``scan_retries`` hedges the
        supervisor simply keeps waiting on every copy; the hedges
        bound straggler latency, not worst-case work.
        """
        policy = RetryPolicy(
            base=float(self.scan_timeout), max_attempts=self.scan_retries
        )
        outstanding: dict[int, list] = {
            i: [pool.submit(fn, i)] for i in range(nq)
        }
        attempts = {i: 0 for i in range(nq)}
        errors: list[BaseException] = []
        while outstanding:
            running = [f for futs in outstanding.values() for f in futs]
            min_attempt = min(attempts[i] for i in outstanding)
            timeout = None
            if min_attempt <= self.scan_retries:
                timeout = policy.delay(min(min_attempt, policy.max_attempts))
            done, _ = wait(running, timeout=timeout, return_when=FIRST_COMPLETED)
            progressed = False
            for i in list(outstanding):
                futs = outstanding[i]
                finished = [f for f in futs if f.done()]
                if finished:
                    progressed = True
                    exc = None
                    for f in finished:
                        exc = f.exception()
                        if exc is None:
                            break
                    if exc is not None and len(finished) == len(futs):
                        errors.append(exc)
                    elif exc is not None:
                        continue  # a live hedge may still succeed
                    del outstanding[i]
            if progressed or not outstanding:
                continue
            # Timeout tick: hedge every straggler that still has
            # attempts left; results are idempotent so the duplicate
            # is free of correctness risk.
            for i in list(outstanding):
                if attempts[i] < self.scan_retries:
                    attempts[i] += 1
                    self.fault_counters.scan_timeouts += 1
                    outstanding[i].append(pool.submit(fn, i))
                else:
                    attempts[i] += 1  # stop rearming the wait timeout
        if errors:
            raise errors[0]

    def _group_mapper(self):
        def run(task, shards) -> None:
            pool = self._ensure_thread_pool()
            futures = [
                pool.submit(self._chaos_wrap(task), shard)
                for shard in shards
            ]
            errors = []
            for future in futures:
                exc = future.exception()
                if exc is not None:
                    errors.append(exc)
            if errors:
                raise errors[0]

        return run
