"""Thread backend: real host parallelism (no simulation).

Queries are independent, so the backend fans them out across a thread
pool; numpy kernels release the GIL while they run, so overlap grows
with per-query work (large candidate sets and dimensionalities).
Results are byte-identical to the serial backend regardless of thread
count — that invariance, not raw speed, is the contract this class is
tested on.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

from repro.core.executor.base import HostBackend
from repro.core.partition import PartitionPlan


class ThreadBackend(HostBackend):
    """Multithreaded HARMONY-style pruned search on the host machine.

    Args:
        index: trained+populated IVF index.
        plan: partition plan; defaults to a single-shard plan with 4
            dimension slices (pruning-friendly).
        n_threads: worker threads (default: ``ThreadPoolExecutor``'s).
        prewarm_size: heap-seeding candidates per query (0 disables
            pruning entirely).
        enable_pruning: toggle lossless early-stop pruning.
    """

    name = "thread"

    def __init__(
        self,
        index: "IVFFlatIndex",
        plan: PartitionPlan | None = None,
        n_threads: int | None = None,
        prewarm_size: int = 32,
        enable_pruning: bool = True,
    ) -> None:
        if n_threads is not None and n_threads <= 0:
            raise ValueError(f"n_threads must be positive, got {n_threads}")
        super().__init__(
            index,
            plan=plan,
            prewarm_size=prewarm_size,
            enable_pruning=enable_pruning,
        )
        self.n_threads = n_threads

    def _map(self, fn, nq: int) -> None:
        with ThreadPoolExecutor(max_workers=self.n_threads) as pool:
            list(pool.map(fn, range(nq)))
