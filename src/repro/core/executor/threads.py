"""Thread backend: real host parallelism (no simulation).

In the batched path the unit of parallelism is a *shard-group* — all
queries touching one vector shard, processed as fused matrix-matrix
stages — so threads scale with the plan's shard count while each
stage stays a large GIL-releasing numpy call. Per-query heap merges
are serialized by the kernel's per-query locks; stale (looser)
threshold reads under concurrency only prune less, never wrongly,
because the pruning bound is lossless. In the per-query path
(``batch_queries=False`` or single-query batches) queries themselves
fan out across the pool. Results are byte-identical to the serial
backend regardless of thread count — that invariance, not raw speed,
is the contract this class is tested on.

The pool is created lazily on first use and reused across ``search()``
calls (constructing a ``ThreadPoolExecutor`` per call costs thread
spawns on every query batch); :meth:`ThreadBackend.close` releases it,
and a closed backend transparently re-creates the pool if searched
again.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

from repro.core.executor.base import HostBackend
from repro.core.partition import PartitionPlan


class ThreadBackend(HostBackend):
    """Multithreaded HARMONY-style pruned search on the host machine.

    Args:
        index: trained+populated IVF index.
        plan: partition plan; defaults to a single-shard plan with 4
            dimension slices (pruning-friendly).
        n_threads: worker threads (default: ``ThreadPoolExecutor``'s).
        prewarm_size: heap-seeding candidates per query (0 disables
            pruning entirely).
        enable_pruning: toggle lossless early-stop pruning.

    With a ``tracer`` attached (see :class:`HostBackend`), wall-clock
    spans land on one lane per pool thread, so the exported timeline
    shows the actual shard-group / query interleaving across threads.
    """

    name = "thread"

    def __init__(
        self,
        index: "IVFFlatIndex",
        plan: PartitionPlan | None = None,
        n_threads: int | None = None,
        prewarm_size: int = 32,
        enable_pruning: bool = True,
        batch_queries: bool = True,
        use_packed_base: bool = True,
        scan_precision: str = "fp32",
    ) -> None:
        if n_threads is not None and n_threads <= 0:
            raise ValueError(f"n_threads must be positive, got {n_threads}")
        super().__init__(
            index,
            plan=plan,
            prewarm_size=prewarm_size,
            enable_pruning=enable_pruning,
            batch_queries=batch_queries,
            use_packed_base=use_packed_base,
            scan_precision=scan_precision,
        )
        self.n_threads = n_threads
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()

    def _ensure_thread_pool(self) -> ThreadPoolExecutor:
        """The persistent pool, created lazily and revived after close."""
        pool = self._pool
        if pool is None:
            with self._pool_lock:
                pool = self._pool
                if pool is None:
                    pool = ThreadPoolExecutor(max_workers=self.n_threads)
                    self._pool = pool
        return pool

    def close(self) -> None:
        """Shut the worker pool down. Idempotent; search() revives it."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
        super().close()

    def __enter__(self) -> "ThreadBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _map(self, fn, nq: int) -> None:
        pool = self._ensure_thread_pool()
        list(pool.map(fn, range(nq)))

    def _group_mapper(self):
        def run(task, shards) -> None:
            pool = self._ensure_thread_pool()
            list(pool.map(task, shards))

        return run
