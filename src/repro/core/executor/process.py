"""Process backend: zero-copy multi-core execution with work stealing.

Python's GIL caps the thread backend at whatever parallelism numpy
happens to release; this backend sidesteps it with a pool of
*persistent* worker processes scanning the same physical memory:

- **Zero-copy data plane** — the packed shard layout is re-homed into
  one ``multiprocessing.shared_memory`` segment
  (:class:`~repro.core.layout.SharedShardPackedBase`); workers attach
  by name and map the identical pages. Per batch, only query vectors,
  probe rows, and prewarm ids go out, and only compact per-query
  top-k candidate arrays come back — base vectors are never pickled.
- **Work stealing** — the batch's (query-group, shard) tasks are
  seeded shard-major onto per-worker deques (contiguous ranges of the
  shared task table, balanced by estimated candidate volume); owners
  pop from the head, idle workers steal from a victim's tail. Skewed
  shard sizes therefore shift work to idle cores instead of leaving
  them parked, and successful steals are counted per worker
  (``harmony_worker_steals_total``).
- **Live thresholds** — the parent merges results as they stream in
  and publishes each query's current heap threshold on a small shared
  float64 board; workers prune against the freshest value. Stale
  (looser) reads only prune less, never wrongly — the bound is
  lossless — so results stay **byte-identical** to the serial oracle
  for any interleaving, batched or per query.
- **Graceful degradation** — if shared memory is unavailable, a
  worker crashes, or the pool misbehaves in any way, the backend
  tears the pool down and transparently re-runs the batch on the
  inherited thread path (same kernel, same bytes out).

Scheduling state (deque heads/tails, steal counters) lives in one
small shared int64 block guarded by per-deque locks; the task table
itself is broadcast per batch, so scheduling traffic is index
arithmetic, not pickled objects.
"""

from __future__ import annotations

import os
import queue as _queue_mod
import time
import traceback

import numpy as np

from repro.core.executor.kernel import GROUP_BLOCK_ELEMENTS, collect_results
from repro.core.executor.threads import ThreadBackend
from repro.core.heap import TopKHeap
from repro.core.layout import SharedShardPackedBase, _attach_shm
from repro.core.partition import PartitionPlan
from repro.core.pruning import (
    ShardGroupScan,
    ShardScan,
    SQ8ShardGroupScan,
    SQ8ShardScan,
)
from repro.core.results import SearchResult
from repro.core.routing import shard_candidate_lists

#: Trace lane base for pool workers (host threads use 1000+).
PROCESS_LANE_BASE = 2000

#: Target tasks per worker: enough slack for stealing to smooth skew
#: without drowning the result queue in tiny messages.
TASKS_PER_WORKER = 4

#: Seconds between liveness checks while waiting on worker results.
_POLL_SECONDS = 0.2

#: Give-up horizon (seconds) for a batch making zero progress while
#: every worker still claims to be alive.
_STALL_SECONDS = 120.0


class ProcessPoolError(RuntimeError):
    """The worker pool is unusable; the caller should fall back."""


# ---------------------------------------------------------------------------
# Shared scheduling / threshold state
# ---------------------------------------------------------------------------


class _SharedInt64:
    """A tiny shared int64 vector (deque heads/tails + steal counts)."""

    def __init__(self, shm, n: int, owner: bool) -> None:
        self.shm = shm
        self.array = np.ndarray((n,), dtype=np.int64, buffer=shm.buf)
        self._owner = owner

    @classmethod
    def create(cls, n: int) -> "_SharedInt64":
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(create=True, size=max(8, 8 * n))
        out = cls(shm, n, owner=True)
        out.array[:] = 0
        return out

    @classmethod
    def attach(cls, name: str, n: int) -> "_SharedInt64":
        return cls(_attach_shm(name), n, owner=False)

    def destroy(self) -> None:
        arr, self.array = self.array, None
        del arr
        try:
            self.shm.close()
        except (OSError, BufferError):
            pass
        if self._owner:
            try:
                self.shm.unlink()
            except (FileNotFoundError, OSError):
                pass


class _SharedF64:
    """A shared float64 vector: the per-query live threshold board."""

    def __init__(self, shm, n: int, owner: bool) -> None:
        self.shm = shm
        self.array = np.ndarray((n,), dtype=np.float64, buffer=shm.buf)
        self._owner = owner

    @classmethod
    def create(cls, values: np.ndarray) -> "_SharedF64":
        from multiprocessing import shared_memory

        n = int(values.size)
        shm = shared_memory.SharedMemory(create=True, size=max(8, 8 * n))
        out = cls(shm, n, owner=True)
        out.array[:] = values
        return out

    @classmethod
    def attach(cls, manifest: dict) -> "_SharedF64":
        return cls(_attach_shm(manifest["name"]), manifest["n"], owner=False)

    def manifest(self) -> dict:
        return {"name": self.shm.name, "n": int(self.array.size)}

    def destroy(self) -> None:
        arr, self.array = self.array, None
        del arr
        try:
            self.shm.close()
        except (OSError, BufferError):
            pass
        if self._owner:
            try:
                self.shm.unlink()
            except (FileNotFoundError, OSError):
                pass


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------


def _pop_own(ctrl: np.ndarray, lock, wid: int, n_workers: int) -> int | None:
    """Take the next task from this worker's deque head."""
    with lock:
        head = ctrl[wid]
        if head < ctrl[n_workers + wid]:
            ctrl[wid] = head + 1
            return int(head)
    return None


def _steal(ctrl: np.ndarray, locks, wid: int, n_workers: int) -> int | None:
    """Take a task from some victim's deque tail (LIFO for the thief)."""
    for step in range(1, n_workers):
        victim = (wid + step) % n_workers
        with locks[victim]:
            tail = ctrl[n_workers + victim]
            if ctrl[victim] < tail:
                ctrl[n_workers + victim] = tail - 1
                ctrl[2 * n_workers + wid] += 1  # this thief's steal count
                return int(tail - 1)
    return None


def _filter_prewarmed(ids, rows, norms, prewarm_ids):
    """Drop already-prewarmed candidates, preserving gather order.

    Equivalent to ``gather(..., exclude=mask)``: the keep-mask is
    applied to the same post-``allowed`` ordering the parent's kernel
    uses, so candidate order (and therefore scoring) is unchanged.
    """
    if prewarm_ids.size == 0 or ids.size == 0:
        return ids, rows, norms
    keep = ~np.isin(ids, prewarm_ids)
    if keep.all():
        return ids, rows, norms
    return (
        ids[keep],
        rows[keep],
        None if norms is None else norms[keep],
    )


def _gather_task(layout, plan, ctx, shard, qidx):
    """One (query, shard) candidate gather, precision-aware.

    Returns the per-candidate blocks as a tuple whose head is always
    ``(ids, ...)`` — the fp32 3-tuple or the sq8 6-tuple — with the
    prewarm filter applied to every per-candidate array.
    """
    probes = ctx["probes"][qidx]
    lists_here = shard_candidate_lists(plan, probes, shard)
    prewarm_ids = ctx["prewarm"][qidx]
    if ctx.get("scan_precision") == "sq8":
        ids, codes, err, norms, rows_full, local = layout.gather_sq8(
            shard, lists_here, allowed=ctx["allowed"], exclude=None
        )
        if prewarm_ids.size and ids.size:
            keep = ~np.isin(ids, prewarm_ids)
            if not keep.all():
                ids = ids[keep]
                codes = codes[keep]
                err = err[keep]
                norms = None if norms is None else norms[keep]
                local = local[keep]
        return ids, codes, err, norms, rows_full, local
    ids, rows, norms = layout.gather(
        shard, lists_here, allowed=ctx["allowed"], exclude=None
    )
    return _filter_prewarmed(ids, rows, norms, prewarm_ids)


def _make_worker_scan(layout, plan, metric, ctx, part, qidx):
    """Build the precision-matched ShardScan for one gathered part."""
    query_norms = ctx["query_norms"]
    query_norms = None if query_norms is None else query_norms[qidx]
    if ctx.get("scan_precision") == "sq8":
        ids, codes, err, norms, rows_full, local = part
        return SQ8ShardScan(
            candidate_ids=ids,
            query=ctx["queries"][qidx],
            slices=plan.slices,
            metric=metric,
            base_slice_norms=norms,
            codes=codes,
            code_err=err,
            code_lo=layout.code_lo,
            code_scale=layout.code_scale,
            rows_full=rows_full,
            local=local,
            query_norms=query_norms,
        )
    ids, rows, norms = part
    return ShardScan(
        candidate_ids=ids,
        query=ctx["queries"][qidx],
        slices=plan.slices,
        metric=metric,
        base_slice_norms=norms,
        rows=rows,
        query_norms=query_norms,
    )


def _scan_single(layout, plan, metric, ctx, shard, qidx, board):
    """One (query, shard) scan.

    Returns ``(scores, ids, n_candidates, n_reranked)``.
    """
    part = _gather_task(layout, plan, ctx, shard, qidx)
    ids = part[0]
    empty = (
        np.empty(0, dtype=np.float64), np.empty(0, dtype=np.int64), 0, 0
    )
    if ids.size == 0:
        return empty
    scan = _make_worker_scan(layout, plan, metric, ctx, part, qidx)
    pruning = ctx["enable_pruning"]
    for block in range(plan.n_dim_blocks):
        if scan.n_alive == 0:
            break
        scan.process_slice(block)
        if pruning:
            scan.prune(float(board[qidx]))
    n_candidates = int(ids.size)
    if scan.n_alive == 0:
        return empty[0], empty[1], n_candidates, 0
    sids, sscores = scan.survivors()
    heap = TopKHeap(ctx["k"])
    heap.push_many(sscores, sids)
    scores, out_ids = heap.items_arrays()
    return scores, out_ids, n_candidates, int(getattr(scan, "reranked", 0))


def _scan_group(layout, plan, metric, ctx, shard, qidxs, board):
    """One fused (query-group, shard) scan, chunked like the kernel.

    Returns ``[(qidx, scores, ids, n_candidates, n_reranked), ...]``
    with one compact local-top-k entry per group member.
    """
    dim = int(ctx["queries"].shape[1])
    max_rows = max(1, GROUP_BLOCK_ELEMENTS // dim)
    out = {
        q: [np.empty(0), np.empty(0, dtype=np.int64), 0, 0] for q in qidxs
    }
    sq8 = ctx.get("scan_precision") == "sq8"

    chunk_q: list[int] = []
    chunk_parts: list[tuple] = []
    chunk_rows = 0

    def flush() -> None:
        nonlocal chunk_q, chunk_parts, chunk_rows
        if not chunk_q:
            return
        ids = np.concatenate([p[0] for p in chunk_parts])
        sizes = [p[0].size for p in chunk_parts]
        query_of = np.repeat(np.arange(len(chunk_q), dtype=np.intp), sizes)
        queries = ctx["queries"][np.asarray(chunk_q)]
        norms_at = 3 if sq8 else 2
        base_norms = None
        group_norms = None
        if metric.name != "L2":
            base_norms = np.concatenate(
                [p[norms_at] for p in chunk_parts], axis=0
            )
            group_norms = ctx["query_norms"][np.asarray(chunk_q)]
        if sq8:
            scan = SQ8ShardGroupScan(
                codes=[p[1] for p in chunk_parts],
                ids=ids,
                query_of=query_of,
                queries=queries,
                slices=plan.slices,
                metric=metric,
                base_slice_norms=base_norms,
                query_norms=group_norms,
                code_err=np.concatenate(
                    [p[2] for p in chunk_parts], axis=0
                ),
                code_lo=layout.code_lo,
                code_scale=layout.code_scale,
                rows_full=chunk_parts[0][4],
                local=np.concatenate([p[5] for p in chunk_parts]),
            )
        else:
            scan = ShardGroupScan(
                rows=[p[1] for p in chunk_parts],
                ids=ids,
                query_of=query_of,
                queries=queries,
                slices=plan.slices,
                metric=metric,
                base_slice_norms=base_norms,
                query_norms=group_norms,
            )
        pruning = ctx["enable_pruning"]
        q_arr = np.asarray(chunk_q)
        for block in range(plan.n_dim_blocks):
            if scan.n_alive == 0:
                break
            scan.process_slice(block)
            if pruning:
                scan.prune(np.array(board[q_arr]))
        if scan.n_alive:
            sids, sscores, squery = scan.survivors()
            for local, qidx in enumerate(chunk_q):
                mask = squery == local
                if mask.any():
                    heap = TopKHeap(ctx["k"])
                    heap.push_many(sscores[mask], sids[mask])
                    scores, out_ids = heap.items_arrays()
                    out[qidx][0] = scores
                    out[qidx][1] = out_ids
                    if sq8:
                        out[qidx][3] = int(mask.sum())
        chunk_q, chunk_parts, chunk_rows = [], [], 0

    for qidx in qidxs:
        part = _gather_task(layout, plan, ctx, shard, qidx)
        ids = part[0]
        if ids.size == 0:
            continue
        out[qidx][2] = int(ids.size)
        chunk_q.append(qidx)
        chunk_parts.append(part)
        chunk_rows += int(ids.size)
        if chunk_rows >= max_rows:
            flush()
    flush()
    return [
        (q, out[q][0], out[q][1], out[q][2], out[q][3]) for q in qidxs
    ]


def _worker_main(
    worker_id: int,
    n_workers: int,
    plan: PartitionPlan,
    metric,
    cmd_queue,
    result_queue,
    locks,
    ctrl_name: str,
) -> None:
    """Worker loop: wait for a batch, drain own deque, steal, repeat."""
    ctrl = _SharedInt64.attach(ctrl_name, 3 * n_workers)
    layout: SharedShardPackedBase | None = None
    layout_name: str | None = None
    try:
        while True:
            msg = cmd_queue.get()
            if msg[0] == "stop":
                break
            if msg[0] != "batch":
                continue
            batch_id, ctx = msg[1], msg[2]
            try:
                manifest = ctx["layout"]
                if layout is None or layout_name != manifest["shm_name"]:
                    if layout is not None:
                        layout.close()
                    layout = SharedShardPackedBase.attach(manifest)
                    layout_name = manifest["shm_name"]
                board = _SharedF64.attach(ctx["thresholds"])
                tasks = ctx["tasks"]
                my_lock = locks[worker_id]
                while True:
                    task_id = _pop_own(
                        ctrl.array, my_lock, worker_id, n_workers
                    )
                    if task_id is None:
                        task_id = _steal(
                            ctrl.array, locks, worker_id, n_workers
                        )
                    if task_id is None:
                        break
                    shard, qidxs = tasks[task_id]
                    t0 = time.perf_counter()
                    if len(qidxs) == 1:
                        payload = [
                            (qidxs[0],)
                            + _scan_single(
                                layout, plan, metric, ctx, shard,
                                qidxs[0], board.array,
                            )
                        ]
                    else:
                        payload = _scan_group(
                            layout, plan, metric, ctx, shard,
                            list(qidxs), board.array,
                        )
                    t1 = time.perf_counter()
                    result_queue.put(
                        (
                            "task", batch_id, worker_id, task_id,
                            payload, t0, t1, int(shard),
                        )
                    )
                board.destroy()
                # Batch barrier: after this message the worker provably
                # never touches the ctrl array again until the next
                # "batch" command, so the parent may reseed the deques.
                result_queue.put(("done", batch_id, worker_id))
            except Exception:
                result_queue.put(
                    ("error", batch_id, worker_id, traceback.format_exc())
                )
    finally:
        if layout is not None:
            layout.close()
        ctrl.destroy()


# ---------------------------------------------------------------------------
# The backend
# ---------------------------------------------------------------------------


class ProcessBackend(ThreadBackend):
    """Persistent process-pool execution over shared-memory shards.

    Args:
        index: trained+populated IVF index.
        plan: partition plan; defaults to
            :func:`~repro.core.executor.base.default_plan`.
        n_workers: pool size (default ``os.cpu_count()``).
        start_method: multiprocessing start method; default prefers
            ``fork`` (cheap startup) and falls back to ``spawn``.
        prewarm_size / enable_pruning / batch_queries: as on
            :class:`~repro.core.executor.base.HostBackend`. The packed
            layout is always enabled — it *is* the shared data plane.

    The pool starts lazily on the first ``search()`` and persists
    across calls; call :meth:`close` (or use the backend as a context
    manager) to release processes and shared segments. Whenever the
    pool or shared memory is unusable the batch transparently re-runs
    on the inherited thread path — same kernel, byte-identical
    results — and :attr:`fallback_active` flips to True.
    """

    name = "process"

    def __init__(
        self,
        index: "IVFFlatIndex",
        plan: PartitionPlan | None = None,
        n_workers: int | None = None,
        start_method: str | None = None,
        prewarm_size: int = 32,
        enable_pruning: bool = True,
        batch_queries: bool = True,
        use_packed_base: bool = True,
        scan_precision: str = "fp32",
    ) -> None:
        if n_workers is not None and n_workers <= 0:
            raise ValueError(f"n_workers must be positive, got {n_workers}")
        super().__init__(
            index,
            plan=plan,
            n_threads=n_workers,
            prewarm_size=prewarm_size,
            enable_pruning=enable_pruning,
            batch_queries=batch_queries,
            use_packed_base=True,
            scan_precision=scan_precision,
        )
        self.n_workers = (
            int(n_workers) if n_workers is not None
            else max(1, os.cpu_count() or 1)
        )
        self._start_method = start_method
        self._procs: list = []
        self._cmd_queues: list = []
        self._result_queue = None
        self._locks: list = []
        self._ctrl: _SharedInt64 | None = None
        self._shared_layout: SharedShardPackedBase | None = None
        self._pool_broken = False
        self._batch_counter = 0
        #: Successful steals per worker in the most recent batch.
        self.last_steal_counts: np.ndarray = np.zeros(
            self.n_workers, dtype=np.int64
        )
        #: Successful steals accumulated over the backend's lifetime.
        self.total_steals = 0

    # -- lifecycle ------------------------------------------------------

    @property
    def fallback_active(self) -> bool:
        """True once execution has degraded to the thread path."""
        return self._pool_broken

    @property
    def pool_running(self) -> bool:
        return bool(self._procs)

    def shared_layout_nbytes(self) -> int:
        """Resident bytes of the shared-memory layout (0 when absent)."""
        layout = self._shared_layout
        return 0 if layout is None or layout.shm_name is None else (
            layout.nbytes
        )

    def _context(self):
        import multiprocessing as mp

        if self._start_method is not None:
            return mp.get_context(self._start_method)
        methods = mp.get_all_start_methods()
        return mp.get_context("fork" if "fork" in methods else "spawn")

    def _refresh_shared_layout(self) -> SharedShardPackedBase:
        """(Re)build the shared segment when the index version moved."""
        layout = self._shared_layout
        if (
            layout is not None
            and layout.matches(self.index)
            and (self.scan_precision != "sq8" or layout.has_codes)
        ):
            return layout
        packed = self.kernel.packed_base()
        shared = SharedShardPackedBase.from_packed(packed)
        # The parent scans the same pages: no second resident copy.
        self.kernel._packed = shared
        if layout is not None:
            layout.unlink()
        self._shared_layout = shared
        return shared

    def _ensure_pool(self) -> bool:
        """Start (or confirm) the pool; False means use the fallback."""
        if self._pool_broken:
            return False
        try:
            self._refresh_shared_layout()
            if self._procs:
                if all(p.is_alive() for p in self._procs):
                    return True
                raise ProcessPoolError("worker process died")
            ctx = self._context()
            n = self.n_workers
            self._ctrl = _SharedInt64.create(3 * n)
            self._locks = [ctx.Lock() for _ in range(n)]
            self._result_queue = ctx.Queue()
            self._cmd_queues = [ctx.Queue() for _ in range(n)]
            for wid in range(n):
                proc = ctx.Process(
                    target=_worker_main,
                    args=(
                        wid, n, self.plan, self.kernel.metric,
                        self._cmd_queues[wid], self._result_queue,
                        self._locks, self._ctrl.shm.name,
                    ),
                    daemon=True,
                )
                proc.start()
                self._procs.append(proc)
            return True
        except Exception:
            self._teardown_pool()
            self._pool_broken = True
            return False

    def _teardown_pool(self) -> None:
        for q, proc in zip(self._cmd_queues, self._procs):
            try:
                q.put(("stop",))
            except Exception:
                pass
        for proc in self._procs:
            proc.join(timeout=1.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        for q in self._cmd_queues:
            try:
                q.close()
            except Exception:
                pass
        if self._result_queue is not None:
            try:
                self._result_queue.close()
            except Exception:
                pass
        self._procs = []
        self._cmd_queues = []
        self._result_queue = None
        self._locks = []
        if self._ctrl is not None:
            self._ctrl.destroy()
            self._ctrl = None

    def close(self) -> None:
        """Stop workers and free every shared segment. Idempotent."""
        self._teardown_pool()
        if self._shared_layout is not None:
            if self.kernel._packed is self._shared_layout:
                self.kernel._packed = None
            self._shared_layout.unlink()
            self._shared_layout = None
        super().close()

    def __del__(self) -> None:  # pragma: no cover - GC timing
        try:
            self.close()
        except Exception:
            pass

    # -- scheduling -----------------------------------------------------

    def _make_tasks(
        self, groups: "dict[int, list[int]]"
    ) -> "list[tuple[int, tuple[int, ...]]]":
        """Shard-major (query-group, shard) task table.

        Batched mode splits each shard's query group into chunks so
        the table holds ~:data:`TASKS_PER_WORKER` tasks per worker —
        enough granularity for stealing to smooth skew. Per-query mode
        emits one task per (query, shard); both are query-disjoint, so
        the split can never change results.
        """
        tasks: list[tuple[int, tuple[int, ...]]] = []
        if not self.batch_queries:
            for shard in sorted(groups):
                for qidx in groups[shard]:
                    tasks.append((shard, (qidx,)))
            return tasks
        total = sum(len(v) for v in groups.values())
        target = max(1, TASKS_PER_WORKER * self.n_workers)
        chunk = max(1, -(-total // target))
        for shard in sorted(groups):
            members = groups[shard]
            for i in range(0, len(members), chunk):
                tasks.append((shard, tuple(members[i: i + chunk])))
        return tasks

    def _seed_deques(self, tasks) -> "list[tuple[int, int]]":
        """Contiguous deque ranges balanced by estimated scan volume."""
        n = self.n_workers
        if not tasks:
            return [(0, 0)] * n
        layout = self._shared_layout
        weights = np.array(
            [
                max(1, len(qidxs))
                * max(1, layout.shard_size(shard))
                for shard, qidxs in tasks
            ],
            dtype=np.float64,
        )
        cum = np.cumsum(weights)
        total = cum[-1]
        bounds = [0]
        for w in range(1, n):
            bounds.append(int(np.searchsorted(cum, total * w / n)))
        bounds.append(len(tasks))
        for i in range(1, len(bounds)):
            bounds[i] = max(bounds[i], bounds[i - 1])
        return [(bounds[i], bounds[i + 1]) for i in range(n)]

    # -- search ---------------------------------------------------------

    def search(
        self,
        queries: np.ndarray,
        k: int,
        nprobe: int = 1,
        filter_labels: "np.ndarray | list[int] | None" = None,
        skip_shards: "frozenset[int] | set[int] | None" = None,
        coverage: np.ndarray | None = None,
    ) -> SearchResult:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if not self._ensure_pool():
            return super().search(
                queries, k, nprobe=nprobe, filter_labels=filter_labels,
                skip_shards=skip_shards, coverage=coverage,
            )
        try:
            return self._process_search(
                queries, k, nprobe, filter_labels, skip_shards, coverage
            )
        except (ProcessPoolError, OSError):
            self._teardown_pool()
            self._pool_broken = True
            return super().search(
                queries, k, nprobe=nprobe, filter_labels=filter_labels,
                skip_shards=skip_shards, coverage=coverage,
            )

    def _process_search(
        self,
        queries: np.ndarray,
        k: int,
        nprobe: int,
        filter_labels,
        skip_shards,
        coverage: np.ndarray | None,
    ) -> SearchResult:
        kernel = self.kernel
        tracer = self.tracer
        kernel.tracer = None  # worker spans are recorded from timings
        rerank_before = kernel.rerank_candidates_total
        queries = kernel.prepare_queries(queries)
        nq = queries.shape[0]
        if tracer is None:
            probes = self.index.probe(queries, nprobe)
        else:
            with tracer.wall_span("route", "computation", n=nq):
                probes = self.index.probe(queries, nprobe)
        allowed = self.index.allowed_mask(filter_labels)

        # Prewarm in the parent (it owns the heaps), exactly as the
        # kernel's batched path does; coverage goes to a local buffer
        # so a mid-batch fallback cannot double-count.
        states = [
            kernel.begin_query(i, queries[i], probes[i], k, allowed)
            for i in range(nq)
        ]
        local_cov = (
            np.zeros((nq, 2), dtype=np.int64)
            if coverage is not None else None
        )
        if local_cov is not None:
            for state in states:
                local_cov[state.query_index, :] += state.prewarmed.size

        groups: dict[int, list[int]] = {}
        for state in states:
            for shard in kernel.shards_for(state):
                shard = int(shard)
                if skip_shards and shard in skip_shards:
                    if local_cov is not None:
                        local_cov[state.query_index, 1] += (
                            kernel.count_candidates(state, shard, allowed)
                        )
                    continue
                groups.setdefault(shard, []).append(state.query_index)

        tasks = self._make_tasks(groups)
        if tasks:
            self._dispatch_batch(
                tasks, states, queries, probes, allowed, k, local_cov,
                tracer,
            )
        if coverage is not None and local_cov is not None:
            coverage += local_cov
        self.last_rerank_count = (
            kernel.rerank_candidates_total - rerank_before
        )
        return collect_results([state.heap for state in states], k)

    def _dispatch_batch(
        self, tasks, states, queries, probes, allowed, k, local_cov, tracer
    ) -> None:
        self._batch_counter += 1
        batch_id = self._batch_counter
        n = self.n_workers
        ranges = self._seed_deques(tasks)
        ctrl = self._ctrl.array
        for wid, (start, stop) in enumerate(ranges):
            ctrl[wid] = start  # head
            ctrl[n + wid] = stop  # tail
            ctrl[2 * n + wid] = 0  # steals
        board = _SharedF64.create(
            np.array([s.heap.threshold for s in states], dtype=np.float64)
        )
        query_norms = None
        if states and states[0].query_norms is not None:
            query_norms = np.stack([s.query_norms for s in states])
        ctx = {
            "layout": self._shared_layout.manifest(),
            "thresholds": board.manifest(),
            "tasks": tasks,
            "queries": queries,
            "probes": probes,
            "prewarm": [s.prewarmed for s in states],
            "query_norms": query_norms,
            "allowed": allowed,
            "k": k,
            "enable_pruning": self.enable_pruning,
            "scan_precision": self.scan_precision,
        }
        try:
            for q in self._cmd_queues:
                q.put(("batch", batch_id, ctx))
            self._collect(
                batch_id, len(tasks), states, board, local_cov, tracer
            )
        finally:
            steals = np.array(ctrl[2 * n: 3 * n], dtype=np.int64)
            self.last_steal_counts = steals
            self.total_steals += int(steals.sum())
            board.destroy()

    def _collect(
        self, batch_id, n_tasks, states, board, local_cov, tracer
    ) -> None:
        """Merge streamed task results; return once the batch quiesces.

        Completion requires every task result *and* a ``done`` barrier
        message from every worker — only then is it safe to reseed the
        shared deque bounds for the next batch.
        """
        received = 0
        done = 0
        seen: set[int] = set()
        last_progress = time.monotonic()
        while received < n_tasks or done < len(self._procs):
            try:
                msg = self._result_queue.get(timeout=_POLL_SECONDS)
            except _queue_mod.Empty:
                if any(not p.is_alive() for p in self._procs):
                    raise ProcessPoolError("worker process died mid-batch")
                if time.monotonic() - last_progress > _STALL_SECONDS:
                    raise ProcessPoolError("worker pool stalled")
                continue
            if msg[1] != batch_id:
                continue  # stale leftovers from an aborted batch
            if msg[0] == "error":
                raise ProcessPoolError(f"worker failed:\n{msg[3]}")
            last_progress = time.monotonic()
            if msg[0] == "done":
                done += 1
                continue
            _, _, wid, task_id, payload, t0, t1, shard = msg
            if task_id in seen:
                continue
            seen.add(task_id)
            for qidx, scores, ids, n_candidates, n_reranked in payload:
                if local_cov is not None:
                    local_cov[qidx, :] += int(n_candidates)
                if n_reranked:
                    self.kernel._count_rerank_amount(int(n_reranked))
                if len(scores):
                    heap = states[qidx].heap
                    heap.push_many(scores, ids)
                    board.array[qidx] = heap.threshold
            if tracer is not None:
                tracer.record(
                    "worker-scan", "computation",
                    node=PROCESS_LANE_BASE + wid,
                    start=t0, end=t1,
                    worker=wid, shard=shard,
                    queries=len(payload),
                )
            received += 1

    def __enter__(self) -> "ProcessBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
