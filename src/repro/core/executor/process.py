"""Process backend: zero-copy multi-core execution with work stealing.

Python's GIL caps the thread backend at whatever parallelism numpy
happens to release; this backend sidesteps it with a pool of
*persistent* worker processes scanning the same physical memory:

- **Zero-copy data plane** — the packed shard layout is re-homed into
  one ``multiprocessing.shared_memory`` segment
  (:class:`~repro.core.layout.SharedShardPackedBase`); workers attach
  by name and map the identical pages. Per batch, only query vectors,
  probe rows, and prewarm ids go out, and only compact per-query
  top-k candidate arrays come back — base vectors are never pickled.
- **Work stealing** — the batch's (query-group, shard) tasks are
  seeded shard-major onto per-worker deques (contiguous ranges of the
  shared task table, balanced by estimated candidate volume); owners
  pop from the head, idle workers steal from a victim's tail. Skewed
  shard sizes therefore shift work to idle cores instead of leaving
  them parked, and successful steals are counted per worker
  (``harmony_worker_steals_total``).
- **Live thresholds** — the parent merges results as they stream in
  and publishes each query's current heap threshold on a small shared
  float64 board; workers prune against the freshest value. Stale
  (looser) reads only prune less, never wrongly — the bound is
  lossless — so results stay **byte-identical** to the serial oracle
  for any interleaving, batched or per query.
- **Supervision** — each batch runs as one or more *rounds*, every
  round owning a fresh scheduling segment (deque heads/tails + steal
  counters). The parent watches worker liveness while collecting: a
  worker that dies mid-round has its unfinished tasks requeued onto a
  repair round for the survivors and is respawned in the background
  (``harmony_worker_respawns_total`` / ``harmony_tasks_requeued_total``),
  and the query completes byte-identically on the pool — results are
  deduplicated by task, so a task finished twice merges once. With
  ``scan_timeout`` set, rounds exceeding their (exponentially
  escalating) deadline hedge their stragglers onto new rounds
  (``harmony_scan_timeouts_total``); once ``scan_retries`` is
  exhausted, degraded mode abandons the task with per-query coverage
  accounting (``harmony_abandoned_scans_total``) instead of blocking.
- **Graceful degradation** — only when the *whole* pool is lost (every
  worker dead, shared memory unavailable, repeated requeues making no
  progress) does the backend tear the pool down and transparently
  re-run the batch on the inherited thread path (same kernel, same
  bytes out).

Per-round scheduling segments are what make recovery safe: a straggler
or a dead worker can never corrupt the next round's deques because no
round ever reuses another round's control block. Chaos kills fire at
task boundaries (see :mod:`repro.cluster.host_faults`), so the one
genuinely unrecoverable interleaving — a worker dying while *holding a
deque lock* — is left to the stall watchdog, which falls back.
"""

from __future__ import annotations

import os
import queue as _queue_mod
import time
import traceback
import weakref

import numpy as np

from repro.cluster.host_faults import apply_task_chaos, sleep_for_delay
from repro.core.executor.kernel import GROUP_BLOCK_ELEMENTS, collect_results
from repro.core.executor.threads import ThreadBackend
from repro.core.heap import TopKHeap
from repro.core.layout import (
    SharedShardPackedBase,
    _attach_shm,
    _release_owned_segment,
)
from repro.core.partition import PartitionPlan
from repro.core.pruning import (
    ShardGroupScan,
    ShardScan,
    SQ8ShardGroupScan,
    SQ8ShardScan,
)
from repro.core.results import SearchResult
from repro.core.routing import shard_candidate_lists

#: Trace lane base for pool workers (host threads use 1000+).
PROCESS_LANE_BASE = 2000

#: Target tasks per worker: enough slack for stealing to smooth skew
#: without drowning the result queue in tiny messages.
TASKS_PER_WORKER = 4

#: Seconds between liveness checks while waiting on worker results.
_POLL_SECONDS = 0.2

#: Give-up horizon (seconds) for a batch making zero progress while
#: every worker still claims to be alive.
_STALL_SECONDS = 120.0

#: After the batch's results are in, how long to wait for the workers'
#: round barriers (keeps steal accounting exact on the healthy path;
#: late barriers are reaped by later batches, never waited on).
_SETTLE_GRACE = 2.0

#: Requeue generations without a single task completing before the
#: supervisor declares the pool systematically broken and falls back.
_MAX_BARREN_REQUEUES = 2


class ProcessPoolError(RuntimeError):
    """The worker pool is unusable; the caller should fall back."""


# ---------------------------------------------------------------------------
# Shared scheduling / threshold state
# ---------------------------------------------------------------------------


class _SharedInt64:
    """A tiny shared int64 vector (deque heads/tails + steal counts)."""

    def __init__(self, shm, n: int, owner: bool) -> None:
        self.shm = shm
        self.array = np.ndarray((n,), dtype=np.int64, buffer=shm.buf)
        self._owner = owner
        self._finalizer = (
            weakref.finalize(self, _release_owned_segment, shm)
            if owner
            else None
        )

    @classmethod
    def create(cls, n: int) -> "_SharedInt64":
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(create=True, size=max(8, 8 * n))
        out = cls(shm, n, owner=True)
        out.array[:] = 0
        return out

    @classmethod
    def attach(cls, name: str, n: int) -> "_SharedInt64":
        return cls(_attach_shm(name), n, owner=False)

    def destroy(self) -> None:
        arr, self.array = self.array, None
        del arr
        finalizer, self._finalizer = self._finalizer, None
        if finalizer is not None:
            finalizer.detach()
        try:
            self.shm.close()
        except (OSError, BufferError):
            pass
        if self._owner:
            try:
                self.shm.unlink()
            except (FileNotFoundError, OSError):
                pass


class _SharedF64:
    """A shared float64 vector: the per-query live threshold board."""

    def __init__(self, shm, n: int, owner: bool) -> None:
        self.shm = shm
        self.array = np.ndarray((n,), dtype=np.float64, buffer=shm.buf)
        self._owner = owner
        self._finalizer = (
            weakref.finalize(self, _release_owned_segment, shm)
            if owner
            else None
        )

    @classmethod
    def create(cls, values: np.ndarray) -> "_SharedF64":
        from multiprocessing import shared_memory

        n = int(values.size)
        shm = shared_memory.SharedMemory(create=True, size=max(8, 8 * n))
        out = cls(shm, n, owner=True)
        out.array[:] = values
        return out

    @classmethod
    def attach(cls, manifest: dict) -> "_SharedF64":
        return cls(_attach_shm(manifest["name"]), manifest["n"], owner=False)

    def manifest(self) -> dict:
        return {"name": self.shm.name, "n": int(self.array.size)}

    def destroy(self) -> None:
        arr, self.array = self.array, None
        del arr
        finalizer, self._finalizer = self._finalizer, None
        if finalizer is not None:
            finalizer.detach()
        try:
            self.shm.close()
        except (OSError, BufferError):
            pass
        if self._owner:
            try:
                self.shm.unlink()
            except (FileNotFoundError, OSError):
                pass


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------


def _pop_own(ctrl: np.ndarray, lock, wid: int, n_workers: int) -> int | None:
    """Take the next task from this worker's deque head."""
    with lock:
        head = ctrl[wid]
        if head < ctrl[n_workers + wid]:
            ctrl[wid] = head + 1
            return int(head)
    return None


def _steal(ctrl: np.ndarray, locks, wid: int, n_workers: int) -> int | None:
    """Take a task from some victim's deque tail (LIFO for the thief)."""
    for step in range(1, n_workers):
        victim = (wid + step) % n_workers
        with locks[victim]:
            tail = ctrl[n_workers + victim]
            if ctrl[victim] < tail:
                ctrl[n_workers + victim] = tail - 1
                ctrl[2 * n_workers + wid] += 1  # this thief's steal count
                return int(tail - 1)
    return None


def _filter_prewarmed(ids, rows, norms, prewarm_ids):
    """Drop already-prewarmed candidates, preserving gather order.

    Equivalent to ``gather(..., exclude=mask)``: the keep-mask is
    applied to the same post-``allowed`` ordering the parent's kernel
    uses, so candidate order (and therefore scoring) is unchanged.
    """
    if prewarm_ids.size == 0 or ids.size == 0:
        return ids, rows, norms
    keep = ~np.isin(ids, prewarm_ids)
    if keep.all():
        return ids, rows, norms
    return (
        ids[keep],
        rows[keep],
        None if norms is None else norms[keep],
    )


def _gather_task(layout, plan, ctx, shard, qidx):
    """One (query, shard) candidate gather, precision-aware.

    Returns the per-candidate blocks as a tuple whose head is always
    ``(ids, ...)`` — the fp32 3-tuple or the sq8 6-tuple — with the
    prewarm filter applied to every per-candidate array.
    """
    probes = ctx["probes"][qidx]
    lists_here = shard_candidate_lists(plan, probes, shard)
    prewarm_ids = ctx["prewarm"][qidx]
    if ctx.get("scan_precision") == "sq8":
        ids, codes, err, norms, rows_full, local = layout.gather_sq8(
            shard, lists_here, allowed=ctx["allowed"], exclude=None
        )
        if prewarm_ids.size and ids.size:
            keep = ~np.isin(ids, prewarm_ids)
            if not keep.all():
                ids = ids[keep]
                codes = codes[keep]
                err = err[keep]
                norms = None if norms is None else norms[keep]
                local = local[keep]
        return ids, codes, err, norms, rows_full, local
    ids, rows, norms = layout.gather(
        shard, lists_here, allowed=ctx["allowed"], exclude=None
    )
    return _filter_prewarmed(ids, rows, norms, prewarm_ids)


def _make_worker_scan(layout, plan, metric, ctx, part, qidx):
    """Build the precision-matched ShardScan for one gathered part."""
    query_norms = ctx["query_norms"]
    query_norms = None if query_norms is None else query_norms[qidx]
    if ctx.get("scan_precision") == "sq8":
        ids, codes, err, norms, rows_full, local = part
        return SQ8ShardScan(
            candidate_ids=ids,
            query=ctx["queries"][qidx],
            slices=plan.slices,
            metric=metric,
            base_slice_norms=norms,
            codes=codes,
            code_err=err,
            code_lo=layout.code_lo,
            code_scale=layout.code_scale,
            rows_full=rows_full,
            local=local,
            query_norms=query_norms,
        )
    ids, rows, norms = part
    return ShardScan(
        candidate_ids=ids,
        query=ctx["queries"][qidx],
        slices=plan.slices,
        metric=metric,
        base_slice_norms=norms,
        rows=rows,
        query_norms=query_norms,
    )


def _scan_single(layout, plan, metric, ctx, shard, qidx, board):
    """One (query, shard) scan.

    Returns ``(scores, ids, n_candidates, n_reranked)``.
    """
    part = _gather_task(layout, plan, ctx, shard, qidx)
    ids = part[0]
    empty = (
        np.empty(0, dtype=np.float64), np.empty(0, dtype=np.int64), 0, 0
    )
    if ids.size == 0:
        return empty
    scan = _make_worker_scan(layout, plan, metric, ctx, part, qidx)
    pruning = ctx["enable_pruning"]
    for block in range(plan.n_dim_blocks):
        if scan.n_alive == 0:
            break
        scan.process_slice(block)
        if pruning:
            scan.prune(float(board[qidx]))
    n_candidates = int(ids.size)
    if scan.n_alive == 0:
        return empty[0], empty[1], n_candidates, 0
    sids, sscores = scan.survivors()
    heap = TopKHeap(ctx["k"])
    heap.push_many(sscores, sids)
    scores, out_ids = heap.items_arrays()
    return scores, out_ids, n_candidates, int(getattr(scan, "reranked", 0))


def _scan_group(layout, plan, metric, ctx, shard, qidxs, board):
    """One fused (query-group, shard) scan, chunked like the kernel.

    Returns ``[(qidx, scores, ids, n_candidates, n_reranked), ...]``
    with one compact local-top-k entry per group member.
    """
    dim = int(ctx["queries"].shape[1])
    max_rows = max(1, GROUP_BLOCK_ELEMENTS // dim)
    out = {
        q: [np.empty(0), np.empty(0, dtype=np.int64), 0, 0] for q in qidxs
    }
    sq8 = ctx.get("scan_precision") == "sq8"

    chunk_q: list[int] = []
    chunk_parts: list[tuple] = []
    chunk_rows = 0

    def flush() -> None:
        nonlocal chunk_q, chunk_parts, chunk_rows
        if not chunk_q:
            return
        ids = np.concatenate([p[0] for p in chunk_parts])
        sizes = [p[0].size for p in chunk_parts]
        query_of = np.repeat(np.arange(len(chunk_q), dtype=np.intp), sizes)
        queries = ctx["queries"][np.asarray(chunk_q)]
        norms_at = 3 if sq8 else 2
        base_norms = None
        group_norms = None
        if metric.name != "L2":
            base_norms = np.concatenate(
                [p[norms_at] for p in chunk_parts], axis=0
            )
            group_norms = ctx["query_norms"][np.asarray(chunk_q)]
        if sq8:
            scan = SQ8ShardGroupScan(
                codes=[p[1] for p in chunk_parts],
                ids=ids,
                query_of=query_of,
                queries=queries,
                slices=plan.slices,
                metric=metric,
                base_slice_norms=base_norms,
                query_norms=group_norms,
                code_err=np.concatenate(
                    [p[2] for p in chunk_parts], axis=0
                ),
                code_lo=layout.code_lo,
                code_scale=layout.code_scale,
                rows_full=chunk_parts[0][4],
                local=np.concatenate([p[5] for p in chunk_parts]),
            )
        else:
            scan = ShardGroupScan(
                rows=[p[1] for p in chunk_parts],
                ids=ids,
                query_of=query_of,
                queries=queries,
                slices=plan.slices,
                metric=metric,
                base_slice_norms=base_norms,
                query_norms=group_norms,
            )
        pruning = ctx["enable_pruning"]
        q_arr = np.asarray(chunk_q)
        for block in range(plan.n_dim_blocks):
            if scan.n_alive == 0:
                break
            scan.process_slice(block)
            if pruning:
                scan.prune(np.array(board[q_arr]))
        if scan.n_alive:
            sids, sscores, squery = scan.survivors()
            for local, qidx in enumerate(chunk_q):
                mask = squery == local
                if mask.any():
                    heap = TopKHeap(ctx["k"])
                    heap.push_many(sscores[mask], sids[mask])
                    scores, out_ids = heap.items_arrays()
                    out[qidx][0] = scores
                    out[qidx][1] = out_ids
                    if sq8:
                        out[qidx][3] = int(mask.sum())
        chunk_q, chunk_parts, chunk_rows = [], [], 0

    for qidx in qidxs:
        part = _gather_task(layout, plan, ctx, shard, qidx)
        ids = part[0]
        if ids.size == 0:
            continue
        out[qidx][2] = int(ids.size)
        chunk_q.append(qidx)
        chunk_parts.append(part)
        chunk_rows += int(ids.size)
        if chunk_rows >= max_rows:
            flush()
    flush()
    return [
        (q, out[q][0], out[q][1], out[q][2], out[q][3]) for q in qidxs
    ]


def _worker_main(
    worker_id: int,
    n_workers: int,
    plan: PartitionPlan,
    metric,
    cmd_queue,
    result_queue,
    locks,
) -> None:
    """Worker loop: wait for a round, drain own deque, steal, repeat.

    Every ``batch`` command carries its own scheduling segment
    (``ctx["ctrl"]``) and threshold board; both are attached for the
    round and dropped after, so a straggler can never touch a newer
    round's deques. A round whose shared segments are already gone
    (the parent finished the batch without this worker) degenerates
    to an immediate barrier message.
    """
    layout: SharedShardPackedBase | None = None
    # Attachment cache key: (base shm name, overlay shm name). Every
    # overlay sync publishes under a fresh name, so a key change is
    # exactly "the data plane moved" — re-attach (re-mmap, no copy).
    layout_key: "tuple[str, str | None] | None" = None
    task_ordinal = 0  # lifetime tasks started by this worker slot

    def flush_results() -> None:
        # Chaos-kill hook: push buffered results to the parent before
        # dying so replaying a schedule yields the same message set.
        result_queue.close()
        result_queue.join_thread()

    try:
        while True:
            msg = cmd_queue.get()
            if msg[0] == "stop":
                break
            if msg[0] != "batch":
                continue
            batch_id, ctx = msg[1], msg[2]
            board = None
            ctrl = None
            try:
                try:
                    manifest = ctx["layout"]
                    overlay = manifest.get("overlay")
                    key = (
                        manifest["shm_name"],
                        overlay["shm_name"] if overlay else None,
                    )
                    if layout is None or layout_key != key:
                        if layout is not None:
                            layout.close()
                            layout = None
                        layout = SharedShardPackedBase.attach(manifest)
                        layout_key = key
                    board = _SharedF64.attach(ctx["thresholds"])
                    ctrl = _SharedInt64.attach(
                        ctx["ctrl"]["name"], 3 * n_workers
                    )
                except FileNotFoundError:
                    # Stale round: the batch already finished and its
                    # segments were reclaimed. Barrier out and move on.
                    result_queue.put(("done", batch_id, worker_id))
                    continue
                chaos_spec = ctx.get("chaos")
                tasks = ctx["tasks"]
                my_lock = locks[worker_id]
                while True:
                    task_id = _pop_own(
                        ctrl.array, my_lock, worker_id, n_workers
                    )
                    if task_id is None:
                        task_id = _steal(
                            ctrl.array, locks, worker_id, n_workers
                        )
                    if task_id is None:
                        break
                    delay = apply_task_chaos(
                        chaos_spec, worker_id, task_ordinal,
                        flush=flush_results,
                    )
                    task_ordinal += 1
                    shard, qidxs = tasks[task_id]
                    t0 = time.perf_counter()
                    if len(qidxs) == 1:
                        payload = [
                            (qidxs[0],)
                            + _scan_single(
                                layout, plan, metric, ctx, shard,
                                qidxs[0], board.array,
                            )
                        ]
                    else:
                        payload = _scan_group(
                            layout, plan, metric, ctx, shard,
                            list(qidxs), board.array,
                        )
                    t1 = time.perf_counter()
                    sleep_for_delay(delay, t1 - t0)
                    result_queue.put(
                        (
                            "task", batch_id, worker_id, task_id,
                            payload, t0, t1, int(shard),
                        )
                    )
                # Round barrier: after this message the worker provably
                # never touches this round's ctrl segment again, so the
                # parent may reclaim it.
                result_queue.put(("done", batch_id, worker_id))
            except Exception:
                result_queue.put(
                    ("error", batch_id, worker_id, traceback.format_exc())
                )
            finally:
                if board is not None:
                    board.destroy()
                if ctrl is not None:
                    ctrl.destroy()
    finally:
        if layout is not None:
            layout.close()


# ---------------------------------------------------------------------------
# The backend
# ---------------------------------------------------------------------------


class ProcessBackend(ThreadBackend):
    """Persistent supervised process-pool execution over shared memory.

    Args:
        index: trained+populated IVF index.
        plan: partition plan; defaults to
            :func:`~repro.core.executor.base.default_plan`.
        n_workers: pool size (default ``os.cpu_count()``).
        start_method: multiprocessing start method; default prefers
            ``fork`` (cheap startup) and falls back to ``spawn``.
        prewarm_size / enable_pruning / batch_queries /
        scan_timeout / scan_retries: as on
            :class:`~repro.core.executor.base.HostBackend`. The packed
            layout is always enabled — it *is* the shared data plane.

    The pool starts lazily on the first ``search()`` and persists
    across calls; call :meth:`close` (or use the backend as a context
    manager) to release processes and shared segments.

    A worker that dies mid-batch is *supervised around*: its
    unfinished tasks are requeued onto the survivors, the worker is
    respawned in the background, and the batch completes on the pool
    with byte-identical results — :attr:`fallback_active` stays False.
    Only a total loss (every worker dead, shared memory gone, or
    repeated requeues without progress) flips execution to the
    inherited thread path, which still returns the same bytes.
    """

    name = "process"

    def __init__(
        self,
        index: "IVFFlatIndex",
        plan: PartitionPlan | None = None,
        n_workers: int | None = None,
        start_method: str | None = None,
        prewarm_size: int = 32,
        enable_pruning: bool = True,
        batch_queries: bool = True,
        use_packed_base: bool = True,
        scan_precision: str = "fp32",
        scan_timeout: "float | None" = None,
        scan_retries: int = 3,
        delta_compact_ratio: float = 0.25,
        auto_compact: bool = True,
    ) -> None:
        if n_workers is not None and n_workers <= 0:
            raise ValueError(f"n_workers must be positive, got {n_workers}")
        super().__init__(
            index,
            plan=plan,
            n_threads=n_workers,
            prewarm_size=prewarm_size,
            enable_pruning=enable_pruning,
            batch_queries=batch_queries,
            use_packed_base=True,
            scan_precision=scan_precision,
            scan_timeout=scan_timeout,
            scan_retries=scan_retries,
            delta_compact_ratio=delta_compact_ratio,
            auto_compact=auto_compact,
        )
        self.n_workers = (
            int(n_workers) if n_workers is not None
            else max(1, os.cpu_count() or 1)
        )
        self._start_method = start_method
        self._procs: list = []
        self._cmd_queues: list = []
        self._result_queue = None
        self._locks: list = []
        self._shared_layout: SharedShardPackedBase | None = None
        self._pool_broken = False
        self._round_counter = 0
        #: Live round records keyed by round id; rounds that outlast
        #: their batch (abandoned stragglers) are reaped here later.
        self._rounds: dict[int, dict] = {}
        #: Successful steals per worker in the most recent batch.
        self.last_steal_counts: np.ndarray = np.zeros(
            self.n_workers, dtype=np.int64
        )
        #: Successful steals accumulated over the backend's lifetime.
        self.total_steals = 0
        #: Full shared-segment re-homes (new base generations copied
        #: into fresh shm). Delta-only mutations must not bump this.
        self.shm_base_rehomes = 0
        #: Overlay-segment republishes (deltas/tombstones shipped to
        #: workers without touching the base pages).
        self.shm_overlay_syncs = 0

    # -- lifecycle ------------------------------------------------------

    @property
    def fallback_active(self) -> bool:
        """True once execution has degraded to the thread path."""
        return self._pool_broken

    @property
    def pool_running(self) -> bool:
        return bool(self._procs)

    def shared_layout_nbytes(self) -> int:
        """Resident bytes of the shared-memory layout (0 when absent)."""
        layout = self._shared_layout
        return 0 if layout is None or layout.shm_name is None else (
            layout.nbytes
        )

    def _context(self):
        import multiprocessing as mp

        if self._start_method is not None:
            return mp.get_context(self._start_method)
        methods = mp.get_all_start_methods()
        return mp.get_context("fork" if "fork" in methods else "spawn")

    def _refresh_shared_layout(self) -> SharedShardPackedBase:
        """(Re)home the shared segment only when the base generation moves.

        Delta-absorbed mutations keep the immutable base pages exactly
        where they are: the kernel refreshes the layout in place and
        only the small overlay segment (delta rows + tombstone mask) is
        republished. A full shm re-home happens solely when a *new
        generation* appears — the first build or a compaction.
        """
        layout = self._shared_layout
        if (
            layout is not None
            and self.kernel._packed is layout
            and layout.matches(self.index)
            and (self.scan_precision != "sq8" or layout.has_codes)
        ):
            # Still current — but the kernel may have absorbed deltas
            # in place since the last dispatch; republishing is a no-op
            # unless the overlay version moved.
            if layout.sync_overlay():
                self.shm_overlay_syncs += 1
            return layout
        packed = self.kernel.packed_base()
        if packed is layout and layout is not None:
            # Same generation, new deltas/tombstones: overlay-only sync.
            if layout.sync_overlay():
                self.shm_overlay_syncs += 1
            return layout
        shared = SharedShardPackedBase.from_packed(packed)
        if shared.delta_rows or shared.tombstones_since:
            # The adopted layout already carries pending deltas (it was
            # refreshed before the pool existed); publish them too.
            shared.sync_overlay()
        # The parent scans the same pages: no second resident copy.
        self.kernel._packed = shared
        if layout is not None:
            layout.unlink()
        self._shared_layout = shared
        self.shm_base_rehomes += 1
        return shared

    def _spawn_worker(self, wid: int, ctx) -> None:
        """Start worker ``wid`` on a fresh command queue."""
        q = ctx.Queue()
        proc = ctx.Process(
            target=_worker_main,
            args=(
                wid, self.n_workers, self.plan, self.kernel.metric,
                q, self._result_queue, self._locks,
            ),
            daemon=True,
        )
        proc.start()
        if wid < len(self._procs):
            self._cmd_queues[wid] = q
            self._procs[wid] = proc
        else:
            self._cmd_queues.append(q)
            self._procs.append(proc)

    def _respawn_worker(self, wid: int, tracer=None) -> None:
        """Replace a dead worker slot with a fresh process.

        The old command queue is dropped (its pending round commands
        died with the worker — the supervisor requeues those tasks);
        the new worker joins from the *next* round dispatched.
        """
        old_q = self._cmd_queues[wid]
        try:
            old_q.close()
        except Exception:
            pass
        self._spawn_worker(wid, self._context())
        self.fault_counters.worker_respawns += 1
        if self.chaos is not None:
            self.chaos.on_worker_death(wid)
        if tracer is not None:
            now = time.perf_counter()
            tracer.record(
                "worker-respawn", "fault",
                node=PROCESS_LANE_BASE + wid,
                start=now, end=now, worker=wid,
            )

    def _ensure_pool(self) -> bool:
        """Start (or repair) the pool; False means use the fallback.

        A partially dead pool is repaired in place — dead slots are
        respawned (counted as ``worker_respawns``) and the batch
        proceeds on the pool. Only a *fully* dead pool, or shared
        memory being unavailable, breaks the pool for good.
        """
        if self._pool_broken:
            return False
        try:
            if self.chaos is not None:
                self.chaos.check_shared_memory(self)
            self._refresh_shared_layout()
            if self._procs:
                dead = [
                    wid for wid, p in enumerate(self._procs)
                    if not p.is_alive()
                ]
                if len(dead) == len(self._procs):
                    raise ProcessPoolError("entire worker pool died")
                for wid in dead:
                    self._respawn_worker(wid, self.tracer)
                return True
            ctx = self._context()
            self._locks = [ctx.Lock() for _ in range(self.n_workers)]
            self._result_queue = ctx.Queue()
            for wid in range(self.n_workers):
                self._spawn_worker(wid, ctx)
            return True
        except Exception:
            self._teardown_pool()
            self._pool_broken = True
            return False

    def _teardown_pool(self) -> None:
        for q, proc in zip(self._cmd_queues, self._procs):
            try:
                q.put(("stop",))
            except Exception:
                pass
        for proc in self._procs:
            proc.join(timeout=1.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        for q in self._cmd_queues:
            try:
                q.close()
            except Exception:
                pass
        if self._result_queue is not None:
            try:
                self._result_queue.close()
            except Exception:
                pass
        self._procs = []
        self._cmd_queues = []
        self._result_queue = None
        self._locks = []
        for rec in self._rounds.values():
            rec["ctrl"].destroy()
        self._rounds = {}

    def close(self) -> None:
        """Stop workers and free every shared segment. Idempotent."""
        self._teardown_pool()
        if self._shared_layout is not None:
            if self.kernel._packed is self._shared_layout:
                self.kernel._packed = None
            self._shared_layout.unlink()
            self._shared_layout = None
        super().close()

    def __del__(self) -> None:  # pragma: no cover - GC timing
        try:
            self.close()
        except Exception:
            pass

    # -- scheduling -----------------------------------------------------

    def _make_tasks(
        self, groups: "dict[int, list[int]]"
    ) -> "list[tuple[int, tuple[int, ...]]]":
        """Shard-major (query-group, shard) task table.

        Batched mode splits each shard's query group into chunks so
        the table holds ~:data:`TASKS_PER_WORKER` tasks per worker —
        enough granularity for stealing to smooth skew. Per-query mode
        emits one task per (query, shard); both are query-disjoint, so
        the split can never change results.
        """
        tasks: list[tuple[int, tuple[int, ...]]] = []
        if not self.batch_queries:
            for shard in sorted(groups):
                for qidx in groups[shard]:
                    tasks.append((shard, (qidx,)))
            return tasks
        total = sum(len(v) for v in groups.values())
        target = max(1, TASKS_PER_WORKER * self.n_workers)
        chunk = max(1, -(-total // target))
        for shard in sorted(groups):
            members = groups[shard]
            for i in range(0, len(members), chunk):
                tasks.append((shard, tuple(members[i: i + chunk])))
        return tasks

    def _seed_ranges(
        self, round_tasks, alive: "list[int]"
    ) -> "list[tuple[int, int]]":
        """Contiguous deque ranges balanced by estimated scan volume.

        Only ``alive`` workers receive a non-empty range; dead slots
        get ``(0, 0)`` and any worker can still steal from any range,
        so one live worker suffices to drain the round.
        """
        n = self.n_workers
        ranges = [(0, 0)] * n
        if not round_tasks or not alive:
            return ranges
        layout = self._shared_layout
        weights = np.array(
            [
                max(1, len(qidxs))
                * max(1, layout.shard_size(shard))
                for shard, qidxs in round_tasks
            ],
            dtype=np.float64,
        )
        cum = np.cumsum(weights)
        total = cum[-1]
        m = len(alive)
        bounds = [0]
        for w in range(1, m):
            bounds.append(int(np.searchsorted(cum, total * w / m)))
        bounds.append(len(round_tasks))
        for i in range(1, len(bounds)):
            bounds[i] = max(bounds[i], bounds[i - 1])
        for slot, wid in enumerate(sorted(alive)):
            ranges[wid] = (bounds[slot], bounds[slot + 1])
        return ranges

    # -- search ---------------------------------------------------------

    def search(
        self,
        queries: np.ndarray,
        k: int,
        nprobe: int = 1,
        filter_labels: "np.ndarray | list[int] | None" = None,
        skip_shards: "frozenset[int] | set[int] | None" = None,
        coverage: np.ndarray | None = None,
    ) -> SearchResult:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if not self._ensure_pool():
            return super().search(
                queries, k, nprobe=nprobe, filter_labels=filter_labels,
                skip_shards=skip_shards, coverage=coverage,
            )
        try:
            return self._process_search(
                queries, k, nprobe, filter_labels, skip_shards, coverage
            )
        except (ProcessPoolError, OSError, EOFError):
            self._teardown_pool()
            self._pool_broken = True
            return super().search(
                queries, k, nprobe=nprobe, filter_labels=filter_labels,
                skip_shards=skip_shards, coverage=coverage,
            )

    def _process_search(
        self,
        queries: np.ndarray,
        k: int,
        nprobe: int,
        filter_labels,
        skip_shards,
        coverage: np.ndarray | None,
    ) -> SearchResult:
        kernel = self.kernel
        tracer = self.tracer
        kernel.tracer = None  # worker spans are recorded from timings
        rerank_before = kernel.rerank_candidates_total
        queries = kernel.prepare_queries(queries)
        nq = queries.shape[0]
        if tracer is None:
            probes = self.index.probe(queries, nprobe)
        else:
            with tracer.wall_span("route", "computation", n=nq):
                probes = self.index.probe(queries, nprobe)
        allowed = self.index.allowed_mask(filter_labels)

        # Prewarm in the parent (it owns the heaps), exactly as the
        # kernel's batched path does; coverage goes to a local buffer
        # so a mid-batch fallback cannot double-count.
        states = [
            kernel.begin_query(i, queries[i], probes[i], k, allowed)
            for i in range(nq)
        ]
        local_cov = (
            np.zeros((nq, 2), dtype=np.int64)
            if coverage is not None else None
        )
        if local_cov is not None:
            for state in states:
                local_cov[state.query_index, :] += state.prewarmed.size

        groups: dict[int, list[int]] = {}
        for state in states:
            for shard in kernel.shards_for(state):
                shard = int(shard)
                if skip_shards and shard in skip_shards:
                    if local_cov is not None:
                        local_cov[state.query_index, 1] += (
                            kernel.count_candidates(state, shard, allowed)
                        )
                    continue
                groups.setdefault(shard, []).append(state.query_index)

        tasks = self._make_tasks(groups)
        if tasks:
            self._dispatch_batch(
                tasks, states, queries, probes, allowed, k, local_cov,
                tracer,
            )
        if coverage is not None and local_cov is not None:
            coverage += local_cov
        self.last_rerank_count = (
            kernel.rerank_candidates_total - rerank_before
        )
        return collect_results([state.heap for state in states], k)

    def _dispatch_batch(
        self, tasks, states, queries, probes, allowed, k, local_cov, tracer
    ) -> None:
        board = _SharedF64.create(
            np.array([s.heap.threshold for s in states], dtype=np.float64)
        )
        query_norms = None
        if states and states[0].query_norms is not None:
            query_norms = np.stack([s.query_norms for s in states])
        ctx_base = {
            "layout": self._shared_layout.manifest(),
            "thresholds": board.manifest(),
            "queries": queries,
            "probes": probes,
            "prewarm": [s.prewarmed for s in states],
            "query_norms": query_norms,
            "allowed": allowed,
            "k": k,
            "enable_pruning": self.enable_pruning,
            "scan_precision": self.scan_precision,
        }
        self.last_steal_counts = np.zeros(self.n_workers, dtype=np.int64)
        try:
            self._supervise(
                tasks, ctx_base, states, board, allowed, local_cov, tracer
            )
        finally:
            board.destroy()

    # -- supervision ----------------------------------------------------

    def _alive_workers(self) -> "list[int]":
        return [
            wid for wid, p in enumerate(self._procs) if p.is_alive()
        ]

    def _dispatch_round(
        self, task_ids, tasks, ctx_base, batch_tag, attempt, gen,
        completed_count,
    ) -> dict:
        """Ship one round (a subset of the batch's tasks) to the pool."""
        alive = self._alive_workers()
        if not alive:
            raise ProcessPoolError("no live workers to dispatch to")
        self._round_counter += 1
        rid = self._round_counter
        round_tasks = [tasks[t] for t in task_ids]
        ctrl = _SharedInt64.create(3 * self.n_workers)
        ranges = self._seed_ranges(round_tasks, alive)
        n = self.n_workers
        for wid, (start, stop) in enumerate(ranges):
            ctrl.array[wid] = start  # head
            ctrl.array[n + wid] = stop  # tail
            ctrl.array[2 * n + wid] = 0  # steals
        chaos_spec = (
            self.chaos.process_spec() if self.chaos is not None else None
        )
        ctx = dict(
            ctx_base,
            tasks=round_tasks,
            ctrl={"name": ctrl.shm.name, "n": n},
            chaos=chaos_spec,
        )
        rec = {
            "id": rid,
            "batch": batch_tag,
            "task_ids": tuple(task_ids),
            "ctrl": ctrl,
            "workers": set(alive),
            "done": set(),
            "start": time.monotonic(),
            "attempt": int(attempt),
            "gen": int(gen),
            "hedged": False,
            "completed_at_dispatch": int(completed_count),
        }
        if self.scan_timeout is not None:
            rec["deadline"] = rec["start"] + (
                float(self.scan_timeout) * (2.0 ** rec["attempt"])
            )
        self._rounds[rid] = rec
        for wid in alive:
            self._cmd_queues[wid].put(("batch", rid, ctx))
        return rec

    def _settle_round(self, rec) -> None:
        """Reclaim a round whose workers have all barriered (or died)."""
        n = self.n_workers
        steals = np.array(
            rec["ctrl"].array[2 * n: 3 * n], dtype=np.int64
        )
        self.last_steal_counts = self.last_steal_counts + steals
        self.total_steals += int(steals.sum())
        rec["ctrl"].destroy()
        del self._rounds[rec["id"]]

    def _supervise(
        self, tasks, ctx_base, states, board, allowed, local_cov, tracer
    ) -> None:
        """Run the batch to completion across supervised rounds.

        Invariants that keep results byte-identical under any fault
        schedule:

        - every task id is merged **at most once** (``completed`` /
          ``abandoned`` gate the merge), so hedged duplicates and
          requeued re-executions can never double-push candidates;
        - rounds never share scheduling segments, so a straggler from
          round *i* cannot pop tasks meant for round *j*;
        - a task is only *abandoned* in degraded mode, and its missed
          candidates are charged to the per-query coverage buffer the
          same way skipped shards are.
        """
        batch_tag = object()  # identity tag: this batch's rounds
        kernel = self.kernel
        outstanding = set(range(len(tasks)))
        completed: set[int] = set()
        abandoned: set[int] = set()
        reissues = {t: 0 for t in outstanding}
        covered = {t: set() for t in outstanding}  # task -> active rounds

        def abandon(task_ids) -> None:
            for t in task_ids:
                if t not in outstanding:
                    continue
                outstanding.discard(t)
                abandoned.add(t)
                self.fault_counters.abandoned_scans += 1
                shard, qidxs = tasks[t]
                for q in qidxs:
                    local_cov[q, 1] += kernel.count_candidates(
                        states[q], shard, allowed
                    )

        def requeue_after_settle(rec) -> None:
            if rec["batch"] is not batch_tag:
                return  # a previous batch's straggler round
            stale = [
                t for t in rec["task_ids"]
                if t in outstanding and not covered[t]
            ]
            if not stale:
                return
            made_progress = len(completed) > rec["completed_at_dispatch"]
            if not made_progress and rec["gen"] >= _MAX_BARREN_REQUEUES:
                if local_cov is not None:
                    abandon(stale)
                    return
                raise ProcessPoolError(
                    f"{rec['gen']} requeue rounds completed no tasks"
                )
            self.fault_counters.tasks_requeued += len(stale)
            if tracer is not None:
                now = time.perf_counter()
                tracer.record(
                    "task-requeue", "fault",
                    node=PROCESS_LANE_BASE,
                    start=now, end=now, tasks=len(stale),
                )
            new_rec = self._dispatch_round(
                stale, tasks, ctx_base, batch_tag,
                attempt=rec["attempt"], gen=rec["gen"] + 1,
                completed_count=len(completed),
            )
            for t in stale:
                covered[t].add(new_rec["id"])

        def mark_round_progress(rec) -> None:
            if rec["workers"] <= rec["done"]:
                for t in rec["task_ids"]:
                    cov = covered.get(t)
                    if cov is not None:
                        cov.discard(rec["id"])
                self._settle_round(rec)
                requeue_after_settle(rec)

        def check_workers() -> None:
            dead = [
                wid for wid, p in enumerate(self._procs)
                if not p.is_alive()
            ]
            if not dead:
                return
            if len(dead) == len(self._procs):
                raise ProcessPoolError("entire worker pool died mid-batch")
            for wid in dead:
                self._respawn_worker(wid, tracer)
            for rec in list(self._rounds.values()):
                before = len(rec["workers"])
                rec["workers"] -= set(dead)
                if len(rec["workers"]) != before:
                    mark_round_progress(rec)

        def check_deadlines(now: float) -> None:
            if self.scan_timeout is None:
                return
            for rec in list(self._rounds.values()):
                if (
                    rec["batch"] is not batch_tag
                    or rec["hedged"]
                    or now < rec.get("deadline", float("inf"))
                ):
                    continue
                rec["hedged"] = True
                late = [t for t in rec["task_ids"] if t in outstanding]
                if not late:
                    continue
                hedge = [t for t in late if reissues[t] < self.scan_retries]
                spent = [t for t in late if reissues[t] >= self.scan_retries]
                if hedge:
                    for t in hedge:
                        reissues[t] += 1
                    self.fault_counters.scan_timeouts += len(hedge)
                    new_rec = self._dispatch_round(
                        hedge, tasks, ctx_base, batch_tag,
                        attempt=rec["attempt"] + 1, gen=rec["gen"],
                        completed_count=len(completed),
                    )
                    for t in hedge:
                        covered[t].add(new_rec["id"])
                if spent and local_cov is not None:
                    # Degraded mode: stop waiting — charge the missed
                    # candidates to coverage, exactly like a skipped
                    # shard, and let the batch return promptly.
                    abandon(spent)
                # Non-degraded: keep waiting; the straggler is slow,
                # not lost, and the stall watchdog bounds the worst
                # case (a genuinely wedged pool falls back).

        first = self._dispatch_round(
            sorted(outstanding), tasks, ctx_base, batch_tag,
            attempt=0, gen=0, completed_count=0,
        )
        for t in outstanding:
            covered[t].add(first["id"])

        last_progress = time.monotonic()
        while outstanding:
            try:
                msg = self._result_queue.get(timeout=_POLL_SECONDS)
            except _queue_mod.Empty:
                msg = None
            now = time.monotonic()
            if msg is None:
                check_workers()
                check_deadlines(now)
                if now - last_progress > _STALL_SECONDS:
                    raise ProcessPoolError("worker pool stalled")
                continue
            kind, rid = msg[0], msg[1]
            if kind == "error":
                raise ProcessPoolError(f"worker failed:\n{msg[3]}")
            rec = self._rounds.get(rid)
            if rec is None:
                continue  # stale leftovers from a reclaimed round
            if kind == "done":
                rec["done"].add(msg[2])
                mark_round_progress(rec)
                last_progress = now
                continue
            _, _, wid, local_tid, payload, t0, t1, shard = msg
            if rec["batch"] is not batch_tag:
                continue  # a previous batch's task: states are gone
            orig = rec["task_ids"][local_tid]
            if orig in completed or orig in abandoned:
                continue  # hedged duplicate: first result won
            completed.add(orig)
            outstanding.discard(orig)
            last_progress = now
            for qidx, scores, ids, n_candidates, n_reranked in payload:
                if local_cov is not None:
                    local_cov[qidx, :] += int(n_candidates)
                if n_reranked:
                    kernel._count_rerank_amount(int(n_reranked))
                if len(scores):
                    heap = states[qidx].heap
                    heap.push_many(scores, ids)
                    board.array[qidx] = heap.threshold
            if tracer is not None:
                tracer.record(
                    "worker-scan", "computation",
                    node=PROCESS_LANE_BASE + wid,
                    start=t0, end=t1,
                    worker=wid, shard=shard,
                    queries=len(payload),
                )

        # All results are in. Give the round barriers a short grace
        # window so steal accounting stays exact on the healthy path;
        # rounds past their deadline (hedged stragglers) are not worth
        # waiting on — later batches reap them.
        grace_end = time.monotonic() + _SETTLE_GRACE
        while any(
            rec["batch"] is batch_tag and not rec["hedged"]
            for rec in self._rounds.values()
        ):
            remaining = grace_end - time.monotonic()
            if remaining <= 0:
                break
            try:
                msg = self._result_queue.get(
                    timeout=min(_POLL_SECONDS, remaining)
                )
            except _queue_mod.Empty:
                try:
                    check_workers()
                except ProcessPoolError:
                    break  # results are already in; next search repairs
                continue
            if msg[0] == "done":
                rec = self._rounds.get(msg[1])
                if rec is not None:
                    rec["done"].add(msg[2])
                    if rec["workers"] <= rec["done"]:
                        self._settle_round(rec)
            elif msg[0] == "error":
                raise ProcessPoolError(f"worker failed:\n{msg[3]}")
            # task messages here are duplicates of completed tasks

    def __enter__(self) -> "ProcessBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
