"""The HARMONY scan kernel: Algorithm 1 implemented exactly once.

Every execution backend — serial reference loop, host thread pool,
discrete-event simulation — runs the same search algorithm: prewarm the
top-K heap from the nearest probed list, walk each touched shard's
candidates through the dimension pipeline with lossless early-stop
pruning, and merge the survivors into the heap. Historically that
algorithm lived in two private copies (``PipelineEngine`` and
``ThreadedSearcher``); :class:`ScanKernel` is its single home.

The kernel is deliberately *timing-free*: it gathers candidates, scores
batches, steps :class:`~repro.core.pruning.ShardScan` objects slice by
slice, and maintains heaps. Backends decide *when* and *where* each
step runs (host threads, simulated machines) and charge whatever cost
model they like around the kernel calls — which is what keeps results
byte-identical across backends by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.heap import TopKHeap
from repro.core.partition import PartitionPlan
from repro.core.pruning import ShardScan
from repro.core.results import SearchResult
from repro.core.routing import shard_candidate_lists, touched_shards
from repro.distance.kernels import scores_to_query
from repro.distance.metrics import Metric, normalize_rows
from repro.distance.partial import slice_norms


@dataclass
class QueryState:
    """Per-query algorithm state shared by all backends.

    Attributes:
        query_index: position of the query in its batch.
        query: the (cosine-normalized, float32) query vector.
        probe_row: probed inverted-list ids for this query.
        heap: the query's top-K heap; its threshold drives pruning.
        prewarmed: ids already scored during prewarm (shard scans skip
            them).
    """

    query_index: int
    query: np.ndarray
    probe_row: np.ndarray
    heap: TopKHeap
    prewarmed: np.ndarray


class ScanKernel:
    """Candidate gathering, prewarm scoring, slice stepping, merging.

    One kernel instance serves one ``(index, plan)`` pair and is shared
    by every backend searching it. All methods are thread-safe for
    *disjoint* queries (they mutate only the per-query
    :class:`QueryState` / :class:`ShardScan` objects passed in), which
    is what lets the thread backend fan queries out without locks.

    Args:
        index: trained+populated IVF index.
        plan: partition plan defining shards and dimension slices.
        metric: similarity metric; defaults to the index's.
        prewarm_size: heap-seeding candidates per query (0 disables).
        enable_pruning: toggle lossless early-stop pruning.
    """

    def __init__(
        self,
        index: "IVFFlatIndex",
        plan: PartitionPlan,
        metric: Metric | None = None,
        prewarm_size: int = 32,
        enable_pruning: bool = True,
    ) -> None:
        if not index.is_trained:
            raise RuntimeError("kernel requires a trained index")
        if prewarm_size < 0:
            raise ValueError(
                f"prewarm_size must be non-negative, got {prewarm_size}"
            )
        self.index = index
        self.plan = plan
        self.metric = index.metric if metric is None else metric
        self.prewarm_size = prewarm_size
        self.enable_pruning = enable_pruning
        self._base_slice_norms: np.ndarray | None = None
        if self.metric is not Metric.L2:
            self._base_slice_norms = slice_norms(index.base, plan.slices)

    # ------------------------------------------------------------------
    # Batch preparation
    # ------------------------------------------------------------------

    def prepare_queries(self, queries: np.ndarray) -> np.ndarray:
        """Canonicalize a query batch (2-D float32, cosine-normalized)."""
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        if self.metric is Metric.COSINE:
            queries = normalize_rows(queries)
        return queries

    # ------------------------------------------------------------------
    # Algorithm 1 steps
    # ------------------------------------------------------------------

    def begin_query(
        self,
        query_index: int,
        query: np.ndarray,
        probe_row: np.ndarray,
        k: int,
        allowed: np.ndarray | None = None,
    ) -> QueryState:
        """Create a query's state and prewarm its heap (PrewarmHeap).

        Prewarm scores up to ``prewarm_size`` members of the nearest
        probed list in one batched distance call, seeding the heap with
        a finite threshold before any shard scan starts.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        heap = TopKHeap(k)
        prewarmed = self._prewarm(query, probe_row, heap, allowed)
        return QueryState(
            query_index=query_index,
            query=query,
            probe_row=probe_row,
            heap=heap,
            prewarmed=prewarmed,
        )

    def _prewarm(
        self,
        query: np.ndarray,
        probe_row: np.ndarray,
        heap: TopKHeap,
        allowed: np.ndarray | None,
    ) -> np.ndarray:
        if self.prewarm_size == 0 or not self.enable_pruning:
            return np.empty(0, dtype=np.int64)
        ids = self.index.list_members(int(probe_row[0]))
        if allowed is not None:
            ids = ids[allowed[ids]]
        ids = ids[: self.prewarm_size]
        if ids.size == 0:
            return ids
        scores = scores_to_query(self.index.base[ids], query, self.metric)
        heap.push_many(scores, ids)
        return ids

    def shards_for(self, state: QueryState) -> np.ndarray:
        """Vector shards the query must visit, ascending."""
        return touched_shards(self.plan, state.probe_row)

    def make_scan(
        self,
        state: QueryState,
        shard: int,
        allowed: np.ndarray | None = None,
    ) -> ShardScan | None:
        """Gather one shard's candidates into a fresh :class:`ShardScan`.

        Returns None when the shard contributes no candidates (all its
        probed lists are empty, filtered out, or fully prewarmed).
        """
        lists_here = shard_candidate_lists(
            self.plan, state.probe_row, int(shard)
        )
        candidates = self.index.candidates(lists_here, allowed=allowed)
        if state.prewarmed.size:
            candidates = np.setdiff1d(
                candidates, state.prewarmed, assume_unique=False
            )
        if candidates.size == 0:
            return None
        norms = self._candidate_slice_norms(candidates)
        return ShardScan(
            base=self.index.base,
            candidate_ids=candidates,
            query=state.query,
            slices=self.plan.slices,
            metric=self.metric,
            base_slice_norms=norms,
        )

    def _candidate_slice_norms(
        self, candidates: np.ndarray
    ) -> np.ndarray | None:
        if self._base_slice_norms is None:
            return None
        if self._base_slice_norms.shape[0] != self.index.base.shape[0]:
            # The index grew since kernel construction (streaming adds);
            # refresh the per-slice norm cache so IP bounds stay lossless.
            self._base_slice_norms = slice_norms(
                self.index.base, self.plan.slices
            )
        return self._base_slice_norms[candidates]

    def step(self, scan: ShardScan, heap: TopKHeap, block: int) -> int:
        """Advance one scan by one dimension block, then prune.

        Returns the number of candidate rows actually processed (the
        compute volume a simulating backend should charge for the
        stage).
        """
        processed = scan.process_slice(block)
        if self.enable_pruning:
            scan.prune(heap.threshold)
        return processed

    def merge_survivors(self, scan: ShardScan, heap: TopKHeap) -> int:
        """Fold a completed scan's survivors into the query heap.

        Returns the number of survivors offered (for per-candidate heap
        cost accounting).
        """
        ids, scores = scan.survivors()
        heap.push_many(scores, ids)
        return int(ids.size)

    def run_scan(self, scan: ShardScan, heap: TopKHeap) -> None:
        """Run one scan's full dimension pipeline in canonical order."""
        for block in range(self.plan.n_dim_blocks):
            if scan.n_alive == 0:
                break
            self.step(scan, heap, block)
        if scan.n_alive:
            self.merge_survivors(scan, heap)

    def search_one(
        self,
        query_index: int,
        query: np.ndarray,
        probe_row: np.ndarray,
        k: int,
        allowed: np.ndarray | None = None,
    ) -> TopKHeap:
        """Algorithm 1 end-to-end for one query (no timing, no threads).

        This is the reference execution the serial backend exposes and
        the thread backend fans out per query.
        """
        state = self.begin_query(query_index, query, probe_row, k, allowed)
        for shard in self.shards_for(state):
            scan = self.make_scan(state, int(shard), allowed)
            if scan is not None:
                self.run_scan(scan, state.heap)
        return state.heap


def collect_results(heaps: "list[TopKHeap]", k: int) -> SearchResult:
    """Materialize per-query heaps into a padded :class:`SearchResult`."""
    nq = len(heaps)
    out_dist = np.full((nq, k), np.inf, dtype=np.float64)
    out_ids = np.full((nq, k), -1, dtype=np.int64)
    for i, heap in enumerate(heaps):
        items = heap.items()
        if items:
            out_dist[i, : len(items)] = [score for score, _ in items]
            out_ids[i, : len(items)] = [cid for _, cid in items]
    return SearchResult(distances=out_dist, ids=out_ids)
