"""The HARMONY scan kernel: Algorithm 1 implemented exactly once.

Every execution backend — serial reference loop, host thread pool,
discrete-event simulation — runs the same search algorithm: prewarm the
top-K heap from the nearest probed list, walk each touched shard's
candidates through the dimension pipeline with lossless early-stop
pruning, and merge the survivors into the heap. Historically that
algorithm lived in two private copies (``PipelineEngine`` and
``ThreadedSearcher``); :class:`ScanKernel` is its single home.

The kernel is deliberately *timing-free*: it gathers candidates (from a
cached :class:`~repro.core.layout.ShardPackedBase` when enabled), scores
batches, steps :class:`~repro.core.pruning.ShardScan` objects slice by
slice, and maintains heaps. Backends decide *when* and *where* each
step runs (host threads, simulated machines) and charge whatever cost
model they like around the kernel calls — which is what keeps results
byte-identical across backends by construction.

Two execution shapes share the kernel:

- :meth:`ScanKernel.search_one` — the per-query reference loop;
- :meth:`ScanKernel.search_batch` — the throughput path: queries are
  grouped by touched shard and every (shard, slice) stage advances the
  whole group at once (:class:`~repro.core.pruning.ShardGroupScan`) —
  dense vectorized bookkeeping and pruning across the group, per-query
  row blocks scored with the per-query broadcast kernel. Because the
  group stage reuses the per-query einsum reduction row for row, its
  results are *bitwise identical* to the looped :meth:`search_one` — a
  property the equivalence tests pin.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.core.heap import TopKHeap
from repro.core.layout import ShardPackedBase
from repro.core.partition import PartitionPlan
from repro.core.pruning import (
    ShardGroupScan,
    ShardScan,
    SQ8ShardGroupScan,
    SQ8ShardScan,
)
from repro.core.results import SearchResult
from repro.core.routing import (
    RoutingCache,
    shard_candidate_lists,
    touched_shards,
)
from repro.distance.kernels import scores_to_query
from repro.distance.metrics import Metric, normalize_rows
from repro.distance.partial import query_slice_norms, slice_norms

#: Upper bound on float32 elements per fused group chunk (~32 MB of
#: candidate rows). Groups larger than this are processed in sequential
#: query-disjoint chunks so the batched path's working set stays
#: cache-and-RAM friendly at any batch size.
GROUP_BLOCK_ELEMENTS = 8_000_000


@dataclass
class QueryState:
    """Per-query algorithm state shared by all backends.

    Attributes:
        query_index: position of the query in its batch.
        query: the (cosine-normalized, float32) query vector.
        probe_row: probed inverted-list ids for this query.
        heap: the query's top-K heap; its threshold drives pruning.
        prewarmed: ids already scored during prewarm (shard scans skip
            them).
        prewarmed_mask: boolean mask over all ids, True at prewarmed
            ids; None when nothing was prewarmed. Precomputed once so
            per-shard candidate exclusion is a mask lookup instead of a
            set difference.
        query_norms: per-slice query norms (IP metrics only), computed
            once per query and shared by every shard scan's
            Cauchy-Schwarz bound.
        route: the memoized :class:`~repro.core.routing.CachedRoute`
            stashed by :meth:`ScanKernel.shards_for` when a routing
            cache is attached; carries the per-shard candidate-list
            splits so candidate gathering skips the planner too. None
            when routing ran uncached.
    """

    query_index: int
    query: np.ndarray
    probe_row: np.ndarray
    heap: TopKHeap
    prewarmed: np.ndarray
    prewarmed_mask: np.ndarray | None = None
    query_norms: np.ndarray | None = None
    route: "object | None" = None


class ScanKernel:
    """Candidate gathering, prewarm scoring, slice stepping, merging.

    One kernel instance serves one ``(index, plan)`` pair and is shared
    by every backend searching it. All methods are thread-safe for
    *disjoint* queries (they mutate only the per-query
    :class:`QueryState` / :class:`ShardScan` objects passed in), which
    is what lets the thread backend fan queries out without locks; the
    batched path adds per-query locks only where shard-groups sharing a
    query run concurrently.

    Args:
        index: trained+populated IVF index.
        plan: partition plan defining shards and dimension slices.
        metric: similarity metric; defaults to the index's.
        prewarm_size: heap-seeding candidates per query (0 disables).
        enable_pruning: toggle lossless early-stop pruning.
        use_packed_base: cache a :class:`ShardPackedBase` and gather
            candidates from it (cheap shard-local indexing) instead of
            fancy-indexing the full base matrix per (query, shard).
            The packed copy is invalidated automatically when the
            index's version moves (streaming adds / deletes).
        scan_precision: ``"fp32"`` scans full-precision rows (the
            classic path); ``"sq8"`` generates candidates on the
            packed uint8 representation with error-padded (lossless)
            pruning bounds, then re-ranks survivors against float32 —
            results stay bitwise identical to the fp32 path. Requires
            the packed base layout.
        delta_compact_ratio: compaction trigger — when the packed
            layout's pending rows (delta segments + tombstones) exceed
            this fraction of its base generation, the next
            :meth:`packed_base` merges them into a fresh generation.
        auto_compact: disable to never compact automatically (deltas
            then grow until :meth:`compact` is called explicitly).
    """

    def __init__(
        self,
        index: "IVFFlatIndex",
        plan: PartitionPlan,
        metric: Metric | None = None,
        prewarm_size: int = 32,
        enable_pruning: bool = True,
        use_packed_base: bool = True,
        scan_precision: str = "fp32",
        delta_compact_ratio: float = 0.25,
        auto_compact: bool = True,
    ) -> None:
        if not index.is_trained:
            raise RuntimeError("kernel requires a trained index")
        if prewarm_size < 0:
            raise ValueError(
                f"prewarm_size must be non-negative, got {prewarm_size}"
            )
        scan_precision = str(scan_precision).lower()
        if scan_precision not in ("fp32", "sq8"):
            raise ValueError(
                f"unknown scan_precision {scan_precision!r}; "
                "expected 'fp32' or 'sq8'"
            )
        if scan_precision == "sq8" and not use_packed_base:
            raise ValueError(
                "scan_precision='sq8' requires the packed base layout"
            )
        self.index = index
        self.plan = plan
        self.metric = index.metric if metric is None else metric
        self.prewarm_size = prewarm_size
        self.enable_pruning = enable_pruning
        self.use_packed_base = use_packed_base
        self.scan_precision = scan_precision
        #: Candidates re-ranked against fp32 rows by completed SQ8
        #: scans (0 on the fp32 path). Guarded by a lock because the
        #: thread backend merges survivors concurrently.
        self.rerank_candidates_total = 0
        self._rerank_lock = threading.Lock()
        #: Optional repro.obs.Tracer. When set, host execution records a
        #: wall-clock span per (shard, slice) stage; None (default)
        #: keeps the scan loops instrumentation-free.
        self.tracer = None
        #: Memoized probe-cell -> shard-set routing (hot, skewed
        #: serving traffic re-routes the same cells constantly). Pure
        #: memoization keyed by index version — results are unchanged.
        #: Set to None to disable.
        self.routing_cache: RoutingCache | None = RoutingCache()
        if delta_compact_ratio <= 0:
            raise ValueError(
                "delta_compact_ratio must be positive, got "
                f"{delta_compact_ratio}"
            )
        self.delta_compact_ratio = float(delta_compact_ratio)
        self.auto_compact = bool(auto_compact)
        #: Full packed-layout constructions (every generation, including
        #: the first build and every compaction).
        self.layout_builds = 0
        #: In-place delta refreshes — mutations absorbed without
        #: touching the base generation.
        self.layout_refreshes = 0
        #: Generations created by merging deltas/tombstones back into
        #: the base (subset of ``layout_builds`` after the first).
        self.layout_compactions = 0
        self._packed: ShardPackedBase | None = None
        #: Serializes packed-layout (re)builds and norm-table refreshes
        #: so concurrent searches through one kernel never tear the
        #: cached data plane (lazy refresh used to race under
        #: multi-threaded callers). Reentrant: the build path reads the
        #: norm cache it also guards.
        self._layout_lock = threading.RLock()
        self._base_slice_norms: np.ndarray | None = None
        if self.metric is not Metric.L2:
            self._base_slice_norms = slice_norms(index.base, plan.slices)

    # ------------------------------------------------------------------
    # Batch preparation
    # ------------------------------------------------------------------

    def prepare_queries(self, queries: np.ndarray) -> np.ndarray:
        """Canonicalize a query batch (2-D float32, cosine-normalized)."""
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        if self.metric is Metric.COSINE:
            queries = normalize_rows(queries)
        return queries

    # ------------------------------------------------------------------
    # Cached data plane
    # ------------------------------------------------------------------

    def packed_base(self) -> ShardPackedBase | None:
        """The shard-major packed layout, maintained incrementally.

        Mutation handling is LSM-style: when the cached layout can
        absorb the index's new state in place (appended rows become
        delta-segment rows, removals flip tombstone bits) it is
        *refreshed* rather than rebuilt — the immutable base generation
        is untouched. Once pending deltas/tombstones exceed
        ``delta_compact_ratio`` of the base (and ``auto_compact`` is
        on), they are merged into a fresh base generation via a full
        rebuild. Results are byte-identical either way.

        Returns None when packing is disabled, in which case candidate
        gathering falls back to fancy-indexing ``index.base``.
        """
        if not self.use_packed_base:
            return None
        with_codes = self.scan_precision == "sq8"
        packed = self._packed
        if (
            packed is not None
            and packed.matches(self.index)
            and (not with_codes or packed.has_codes)
        ):
            return packed
        with self._layout_lock:
            # Double-checked: another thread may have refreshed while
            # this one waited for the lock.
            packed = self._packed
            if (
                packed is not None
                and packed.matches(self.index)
                and (not with_codes or packed.has_codes)
            ):
                return packed
            if (
                packed is not None
                and (not with_codes or packed.has_codes)
                and packed.can_refresh(self.index)
            ):
                self._refresh_base_norms()
                new_norms = None
                if self._base_slice_norms is not None:
                    new_norms = self._base_slice_norms[packed.ntotal :]
                if packed.refresh(self.index, new_slice_norms=new_norms):
                    self.layout_refreshes += 1
                if self.auto_compact and packed.should_compact(
                    self.delta_compact_ratio
                ):
                    return self._rebuild_layout(with_codes, compaction=True)
                return packed
            return self._rebuild_layout(with_codes)

    def _rebuild_layout(
        self, with_codes: bool, compaction: bool = False
    ) -> ShardPackedBase:
        """Build a fresh base generation (caller holds ``_layout_lock``)."""
        self._refresh_base_norms()
        packed = ShardPackedBase.build(
            self.index,
            self.plan,
            base_slice_norms=self._base_slice_norms,
            with_codes=with_codes,
        )
        self._packed = packed
        self.layout_builds += 1
        if compaction:
            self.layout_compactions += 1
        return packed

    def compact(self) -> dict:
        """Merge pending deltas and tombstones into a new generation now.

        Returns a stats dict; ``compacted`` is False when there was
        nothing pending (or packing is disabled).
        """
        if not self.use_packed_base:
            return {
                "compacted": False,
                "generation": 0,
                "delta_rows_merged": 0,
                "tombstones_cleared": 0,
            }
        with self._layout_lock:
            packed = self.packed_base()
            merged = packed.delta_rows
            cleared = packed.tombstones_since
            if merged == 0 and cleared == 0:
                return {
                    "compacted": False,
                    "generation": packed.generation,
                    "delta_rows_merged": 0,
                    "tombstones_cleared": 0,
                }
            with_codes = self.scan_precision == "sq8"
            packed = self._rebuild_layout(with_codes, compaction=True)
            return {
                "compacted": True,
                "generation": packed.generation,
                "delta_rows_merged": merged,
                "tombstones_cleared": cleared,
            }

    def layout_stats(self) -> dict:
        """Generation/delta counters for reports and metrics."""
        packed = self._packed
        return {
            "layout_generation": packed.generation if packed else 0,
            "delta_rows": packed.delta_rows if packed else 0,
            "tombstones_since_build": (
                packed.tombstones_since if packed else 0
            ),
            "layout_builds": self.layout_builds,
            "layout_refreshes": self.layout_refreshes,
            "layout_compactions": self.layout_compactions,
        }

    def _refresh_base_norms(self) -> None:
        with self._layout_lock:
            if self._base_slice_norms is None:
                return
            cached = self._base_slice_norms.shape[0]
            total = self.index.base.shape[0]
            if cached == total:
                return
            if cached < total:
                # The index grew since the last refresh (streaming
                # adds). Per-row slice norms are independent of their
                # neighbors, so extending the cache with just the new
                # rows is bitwise identical to a full recompute.
                appended = slice_norms(
                    self.index.base[cached:total], self.plan.slices
                )
                self._base_slice_norms = np.concatenate(
                    [self._base_slice_norms, appended], axis=0
                )
            else:  # pragma: no cover - ids are append-only
                self._base_slice_norms = slice_norms(
                    self.index.base, self.plan.slices
                )

    def _candidate_slice_norms(
        self, candidates: np.ndarray
    ) -> np.ndarray | None:
        if self._base_slice_norms is None:
            return None
        self._refresh_base_norms()
        return self._base_slice_norms[candidates]

    # ------------------------------------------------------------------
    # Algorithm 1 steps
    # ------------------------------------------------------------------

    def begin_query(
        self,
        query_index: int,
        query: np.ndarray,
        probe_row: np.ndarray,
        k: int,
        allowed: np.ndarray | None = None,
    ) -> QueryState:
        """Create a query's state and prewarm its heap (PrewarmHeap).

        Prewarm scores up to ``prewarm_size`` members of the nearest
        probed list in one batched distance call, seeding the heap with
        a finite threshold before any shard scan starts. Per-query
        reusables — the prewarm exclusion mask and (for IP metrics) the
        per-slice query norms — are computed here exactly once.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        heap = TopKHeap(k)
        prewarmed = self._prewarm(query, probe_row, heap, allowed)
        prewarmed_mask = None
        if prewarmed.size:
            prewarmed_mask = np.zeros(self.index.ntotal, dtype=bool)
            prewarmed_mask[prewarmed] = True
        query_norms = None
        if self.metric is not Metric.L2:
            query_norms = query_slice_norms(
                np.asarray(query, dtype=np.float32), self.plan.slices
            )
        return QueryState(
            query_index=query_index,
            query=query,
            probe_row=probe_row,
            heap=heap,
            prewarmed=prewarmed,
            prewarmed_mask=prewarmed_mask,
            query_norms=query_norms,
        )

    def _prewarm(
        self,
        query: np.ndarray,
        probe_row: np.ndarray,
        heap: TopKHeap,
        allowed: np.ndarray | None,
    ) -> np.ndarray:
        if self.prewarm_size == 0 or not self.enable_pruning:
            return np.empty(0, dtype=np.int64)
        ids = self.index.list_members(int(probe_row[0]))
        if allowed is not None:
            ids = ids[allowed[ids]]
        ids = ids[: self.prewarm_size]
        if ids.size == 0:
            return ids
        scores = scores_to_query(self.index.base[ids], query, self.metric)
        heap.push_many(scores, ids)
        return ids

    def shards_for(self, state: QueryState) -> np.ndarray:
        """Vector shards the query must visit, ascending.

        Served from the :class:`~repro.core.routing.RoutingCache` when
        one is attached (the default): hot probe rows skip both the
        shard-set recomputation *and* the per-shard candidate-list
        split (the full :class:`~repro.core.routing.CachedRoute` is
        stashed on the state for :meth:`_gather_candidates`), which
        matters exactly for the repeated, skewed traffic the serving
        layer sees.
        """
        cache = self.routing_cache
        if cache is None:
            return touched_shards(self.plan, state.probe_row)
        route = cache.route_for(
            self.plan, state.probe_row, self.index.version
        )
        state.route = route
        return route.shards

    def _lists_for(self, state: QueryState, shard: int) -> np.ndarray:
        """The query's probed lists in ``shard``, probe-ordered.

        Reuses the cached route split when :meth:`shards_for` stashed
        one; identical to :func:`shard_candidate_lists` by
        construction (the route is keyed on the exact probe order).
        """
        route = state.route
        if route is not None:
            return route.lists_for(shard)
        return shard_candidate_lists(self.plan, state.probe_row, shard)

    def _gather_candidates(
        self,
        state: QueryState,
        shard: int,
        allowed: np.ndarray | None,
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray | None] | None":
        """One shard's candidate blocks for a query, or None if empty.

        Returns ``(ids, rows, norms)`` on the fp32 path and the
        6-tuple of :meth:`ShardPackedBase.gather_sq8` on the sq8 path
        (either way, ``part[0]`` is the global ids). Uses the packed
        layout when enabled (contiguous shard-local ranges); otherwise
        falls back to the legacy full-base gather. Prewarmed ids are
        excluded via the precomputed boolean mask in all paths.
        """
        lists_here = self._lists_for(state, shard)
        packed = self.packed_base()
        if packed is not None:
            if self.scan_precision == "sq8":
                part = packed.gather_sq8(
                    shard,
                    lists_here,
                    allowed=allowed,
                    exclude=state.prewarmed_mask,
                )
                if part[0].size == 0:
                    return None
                return part
            ids, rows, norms = packed.gather(
                shard,
                lists_here,
                allowed=allowed,
                exclude=state.prewarmed_mask,
            )
            if ids.size == 0:
                return None
            return ids, rows, norms
        candidates = self.index.candidates(lists_here, allowed=allowed)
        if state.prewarmed_mask is not None and candidates.size:
            candidates = candidates[~state.prewarmed_mask[candidates]]
        if candidates.size == 0:
            return None
        rows = self.index.base[candidates]
        norms = self._candidate_slice_norms(candidates)
        return candidates, rows, norms

    def make_scan(
        self,
        state: QueryState,
        shard: int,
        allowed: np.ndarray | None = None,
    ) -> ShardScan | None:
        """Gather one shard's candidates into a fresh :class:`ShardScan`.

        Returns None when the shard contributes no candidates (all its
        probed lists are empty, filtered out, or fully prewarmed).
        """
        part = self._gather_candidates(state, int(shard), allowed)
        if part is None:
            return None
        if self.scan_precision == "sq8":
            ids, codes, err, norms, rows_full, local = part
            packed = self.packed_base()
            return SQ8ShardScan(
                candidate_ids=ids,
                query=state.query,
                slices=self.plan.slices,
                metric=self.metric,
                base_slice_norms=norms,
                codes=codes,
                code_err=err,
                code_lo=packed.code_lo,
                code_scale=packed.code_scale,
                rows_full=rows_full,
                local=local,
                query_norms=state.query_norms,
            )
        ids, rows, norms = part
        return ShardScan(
            candidate_ids=ids,
            query=state.query,
            slices=self.plan.slices,
            metric=self.metric,
            base_slice_norms=norms,
            rows=rows,
            query_norms=state.query_norms,
        )

    def count_candidates(
        self,
        state: QueryState,
        shard: int,
        allowed: np.ndarray | None = None,
    ) -> int:
        """Candidate count a shard *would* contribute to a query.

        Degraded-mode coverage accounting: shards skipped for lack of a
        live replica still enter the coverage denominator, so a partial
        result honestly reports how much of its candidate set it saw.
        """
        part = self._gather_candidates(state, int(shard), allowed)
        if part is None:
            return 0
        return int(part[0].size)

    def step(self, scan: ShardScan, heap: TopKHeap, block: int) -> int:
        """Advance one scan by one dimension block, then prune.

        Returns the number of candidate rows actually processed (the
        compute volume a simulating backend should charge for the
        stage).
        """
        processed = scan.process_slice(block)
        if self.enable_pruning:
            scan.prune(heap.threshold)
        return processed

    def merge_survivors(self, scan: ShardScan, heap: TopKHeap) -> int:
        """Fold a completed scan's survivors into the query heap.

        Returns the number of survivors offered (for per-candidate heap
        cost accounting).
        """
        ids, scores = scan.survivors()
        heap.push_many(scores, ids)
        self._count_rerank(scan)
        return int(ids.size)

    def _count_rerank(self, scan) -> None:
        """Accumulate an SQ8 scan's re-rank count (no-op for fp32)."""
        reranked = getattr(scan, "reranked", 0)
        if reranked:
            self._count_rerank_amount(int(reranked))

    def _count_rerank_amount(self, reranked: int) -> None:
        """Thread-safe add to the lifetime re-rank counter (backends
        executing scans out-of-kernel — the process pool — report
        their workers' counts through this)."""
        with self._rerank_lock:
            self.rerank_candidates_total += int(reranked)

    def run_scan(
        self, scan: ShardScan, heap: TopKHeap, shard: int | None = None
    ) -> None:
        """Run one scan's full dimension pipeline in canonical order.

        ``shard`` only labels trace spans; it never affects execution.
        """
        tracer = self.tracer
        for block in range(self.plan.n_dim_blocks):
            if scan.n_alive == 0:
                break
            if tracer is None:
                self.step(scan, heap, block)
            else:
                with tracer.wall_span(
                    "scan", "computation",
                    shard=shard, block=block, alive=int(scan.n_alive),
                ):
                    self.step(scan, heap, block)
        if scan.n_alive:
            self.merge_survivors(scan, heap)

    def search_one(
        self,
        query_index: int,
        query: np.ndarray,
        probe_row: np.ndarray,
        k: int,
        allowed: np.ndarray | None = None,
        skip_shards: "frozenset[int] | set[int] | None" = None,
        coverage: np.ndarray | None = None,
    ) -> TopKHeap:
        """Algorithm 1 end-to-end for one query (no timing, no threads).

        This is the reference execution the serial backend exposes and
        the thread backend fans out per query.

        Args:
            skip_shards: shards to drop from the scan (degraded mode:
                shards with no live replica). Their candidates count
                toward coverage but are never scored.
            coverage: optional ``(nq, 2)`` array of
                ``[scanned, total]`` candidate counts, updated in place
                at row ``query_index``.
        """
        state = self.begin_query(query_index, query, probe_row, k, allowed)
        if coverage is not None:
            coverage[query_index, :] += state.prewarmed.size
        for shard in self.shards_for(state):
            shard = int(shard)
            if skip_shards and shard in skip_shards:
                if coverage is not None:
                    coverage[query_index, 1] += self.count_candidates(
                        state, shard, allowed
                    )
                continue
            scan = self.make_scan(state, shard, allowed)
            if scan is not None:
                if coverage is not None:
                    coverage[query_index, :] += scan.n_candidates
                self.run_scan(scan, state.heap, shard=shard)
        return state.heap

    # ------------------------------------------------------------------
    # Batched shard-major execution
    # ------------------------------------------------------------------

    def search_batch(
        self,
        queries: np.ndarray,
        probes: np.ndarray,
        k: int,
        allowed: np.ndarray | None = None,
        map_groups=None,
        skip_shards: "frozenset[int] | set[int] | None" = None,
        coverage: np.ndarray | None = None,
    ) -> "list[TopKHeap]":
        """Algorithm 1 for a whole batch, fused shard-major.

        Queries are grouped by touched shard; shard-groups are
        processed in ascending shard order (each query therefore sees
        shards in exactly the order :meth:`search_one` would), and each
        group's (shard, slice) stages run as single fused calls over
        every member's candidates. Results are bitwise identical to
        looping :meth:`search_one`.

        Args:
            queries: prepared query batch ``(nq, dim)``.
            probes: probed list ids ``(nq, nprobe)``.
            k: top-K size.
            allowed: optional per-id admissibility mask.
            map_groups: optional ``fn(task, shards)`` executor fanning
                shard-group tasks out concurrently (the thread
                backend); None processes groups in order on the caller.
                When concurrent, per-query locks serialize heap merges
                — pruning thresholds may be read stale, which is safe
                because thresholds only tighten and pruning is
                lossless.
            skip_shards / coverage: degraded-mode accounting, exactly
                as in :meth:`search_one`. Coverage is accumulated here
                in the single-threaded grouping pass, so the
                concurrent group executor never races on it.

        Returns:
            One populated heap per query.
        """
        nq = queries.shape[0]
        states = [
            self.begin_query(i, queries[i], probes[i], k, allowed)
            for i in range(nq)
        ]
        if coverage is not None:
            for state in states:
                coverage[state.query_index, :] += state.prewarmed.size
        groups: dict[int, list[QueryState]] = {}
        for state in states:
            for shard in self.shards_for(state):
                shard = int(shard)
                if skip_shards and shard in skip_shards:
                    if coverage is not None:
                        coverage[state.query_index, 1] += (
                            self.count_candidates(state, shard, allowed)
                        )
                    continue
                if coverage is not None:
                    coverage[state.query_index, :] += self.count_candidates(
                        state, shard, allowed
                    )
                groups.setdefault(shard, []).append(state)
        shard_order = sorted(groups)
        if map_groups is None:
            for shard in shard_order:
                self.run_shard_group(shard, groups[shard], allowed)
        else:
            locks = [threading.Lock() for _ in states]
            map_groups(
                lambda shard: self.run_shard_group(
                    shard, groups[shard], allowed, locks
                ),
                shard_order,
            )
        return [state.heap for state in states]

    def run_shard_group(
        self,
        shard: int,
        group: "list[QueryState]",
        allowed: np.ndarray | None = None,
        locks: "list[threading.Lock] | None" = None,
    ) -> None:
        """Process one shard for every query in ``group``, fused.

        The group is split into query-disjoint chunks bounded by
        :data:`GROUP_BLOCK_ELEMENTS` so the concatenated row block stays
        memory-friendly at any batch size; chunking cannot change
        results because chunks never share a query.
        """
        dim = int(self.index.base.shape[1])
        max_rows = max(1, GROUP_BLOCK_ELEMENTS // dim)
        chunk_states: list[QueryState] = []
        chunk_parts: list[tuple] = []
        chunk_rows = 0
        for state in group:
            part = self._gather_candidates(state, int(shard), allowed)
            if part is None:
                continue
            chunk_states.append(state)
            chunk_parts.append(part)
            chunk_rows += int(part[0].size)
            if chunk_rows >= max_rows:
                self._run_group_chunk(chunk_states, chunk_parts, locks, shard)
                chunk_states, chunk_parts, chunk_rows = [], [], 0
        if chunk_states:
            self._run_group_chunk(chunk_states, chunk_parts, locks, shard)

    def _run_group_chunk(
        self,
        states: "list[QueryState]",
        parts: "list[tuple]",
        locks: "list[threading.Lock] | None",
        shard: int | None = None,
    ) -> None:
        sq8 = self.scan_precision == "sq8"
        ids = np.concatenate([part[0] for part in parts])
        sizes = [part[0].size for part in parts]
        query_of = np.repeat(np.arange(len(states), dtype=np.intp), sizes)
        queries = np.stack([state.query for state in states])
        norms_at = 3 if sq8 else 2
        base_norms = None
        query_norms = None
        if self.metric is not Metric.L2:
            base_norms = np.concatenate(
                [part[norms_at] for part in parts], axis=0
            )
            query_norms = np.stack([state.query_norms for state in states])
        if sq8:
            packed = self.packed_base()
            scan = SQ8ShardGroupScan(
                codes=[part[1] for part in parts],
                ids=ids,
                query_of=query_of,
                queries=queries,
                slices=self.plan.slices,
                metric=self.metric,
                base_slice_norms=base_norms,
                query_norms=query_norms,
                code_err=np.concatenate(
                    [part[2] for part in parts], axis=0
                ),
                code_lo=packed.code_lo,
                code_scale=packed.code_scale,
                rows_full=parts[0][4],
                local=np.concatenate([part[5] for part in parts]),
            )
        else:
            scan = ShardGroupScan(
                rows=[part[1] for part in parts],
                ids=ids,
                query_of=query_of,
                queries=queries,
                slices=self.plan.slices,
                metric=self.metric,
                base_slice_norms=base_norms,
                query_norms=query_norms,
            )
        tracer = self.tracer
        for block in range(self.plan.n_dim_blocks):
            if scan.n_alive == 0:
                break
            if tracer is None:
                self._group_step(scan, states, block)
            else:
                with tracer.wall_span(
                    "scan", "computation",
                    shard=shard, block=block,
                    group=len(states), alive=int(scan.n_alive),
                ):
                    self._group_step(scan, states, block)
        if scan.n_alive == 0:
            return
        survivor_ids, survivor_scores, survivor_query = scan.survivors()
        self._count_rerank(scan)
        self._merge_group_survivors(
            states, survivor_ids, survivor_scores, survivor_query, locks
        )

    def _group_step(
        self,
        scan: ShardGroupScan,
        states: "list[QueryState]",
        block: int,
    ) -> None:
        """One fused (shard, slice) stage: accumulate, then group-prune."""
        scan.process_slice(block)
        if self.enable_pruning:
            thresholds = np.array(
                [state.heap.threshold for state in states]
            )
            scan.prune(thresholds)

    def _merge_group_survivors(
        self,
        states: "list[QueryState]",
        survivor_ids: np.ndarray,
        survivor_scores: np.ndarray,
        survivor_query: np.ndarray,
        locks: "list[threading.Lock] | None",
    ) -> None:
        for local, state in enumerate(states):
            mask = survivor_query == local
            if not mask.any():
                continue
            scores = survivor_scores[mask]
            cand = survivor_ids[mask]
            if locks is None:
                state.heap.push_many(scores, cand)
            else:
                with locks[state.query_index]:
                    state.heap.push_many(scores, cand)


def recall_vs_healthy(
    kernel: ScanKernel,
    queries: np.ndarray,
    probes: np.ndarray,
    k: int,
    allowed: np.ndarray | None,
    query_indices: np.ndarray,
    result_ids: np.ndarray,
) -> float:
    """Mean top-k id overlap between degraded results and a healthy rerun.

    Re-executes the *degraded* queries (only) through the timing-free
    reference loop with every shard available, and measures what
    fraction of the healthy top-k each partial result retained. ``1.0``
    when ``query_indices`` is empty — nothing was degraded.
    """
    if len(query_indices) == 0:
        return 1.0
    overlaps = []
    for i in query_indices:
        i = int(i)
        heap = kernel.search_one(i, queries[i], probes[i], k, allowed)
        _, ids = heap.items_arrays()
        healthy = {int(x) for x in ids}
        if not healthy:
            overlaps.append(1.0)
            continue
        got = {int(x) for x in result_ids[i] if x >= 0}
        overlaps.append(len(got & healthy) / len(healthy))
    return float(np.mean(overlaps))


def collect_results(heaps: "list[TopKHeap]", k: int) -> SearchResult:
    """Materialize per-query heaps into a padded :class:`SearchResult`."""
    nq = len(heaps)
    out_dist = np.full((nq, k), np.inf, dtype=np.float64)
    out_ids = np.full((nq, k), -1, dtype=np.int64)
    for i, heap in enumerate(heaps):
        scores, ids = heap.items_arrays()
        n = scores.size
        if n:
            out_dist[i, :n] = scores
            out_ids[i, :n] = ids
    return SearchResult(distances=out_dist, ids=out_ids)
