"""Packed shard-major base layouts (the batched executor's data plane).

Candidate gathering used to fancy-index the full base matrix once per
(query, shard) — exactly the scattered DRAM traffic that dominates
IVF scan cost at scale. :class:`ShardPackedBase` instead packs each
vector shard's list members (and, for the inner-product family, their
per-slice norms) into contiguous float32 arrays at plan time, ordered
list-by-list, with a per-list local row range. Gathering a query's
candidates then reduces to concatenating a handful of ``arange`` ranges
and one fancy-index into a small shard-local array — cheap, cache-
friendly, and independent of the total base size.

The packed arrays are maintained LSM-style. A full :meth:`build` packs
one immutable *base generation*; streaming mutations never touch it.
:meth:`refresh` appends newly added rows to per-shard append-only
*delta segments* (rows/ids/norms, plus SQ8 codes encoded against the
generation's frozen quantization params) and mirrors deletions into a
*tombstone mask* that gathers apply before any row reaches a heap —
so an ``add``/``remove`` batch costs O(batch), not O(ntotal), and the
shared-memory copy of the base never has to be re-homed for it.
Because every pruning bound and score is computed per row (partial
einsums are independent of which other rows share a block), scanning
base + delta under a tombstone mask is byte-identical to scanning a
freshly rebuilt layout. When deltas and tombstones accumulate past a
ratio of the base (:meth:`should_compact`), a *compaction* merges them
into a new base generation via an ordinary rebuild.
"""

from __future__ import annotations

import itertools
import weakref

import numpy as np

from repro.core.partition import PartitionPlan
from repro.util.growable import GrowableArray

#: Process-wide base-generation ids: every full build/compaction gets
#: a fresh one, so the process backend can tell "same generation, new
#: deltas" (overlay sync) from "new generation" (full shm re-home).
_GENERATIONS = itertools.count(1)

#: Smallest admissible per-dimension quantization step. Constant
#: columns have zero span; without the clamp encode would divide by a
#: zero (or denormal) scale. Any positive step is exact for them:
#: every code lands on 0 and decodes back to ``lo``.
SQ8_SCALE_EPS = 1e-12


def sq8_train_params(base: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
    """Per-dimension ``(lo, scale)`` for uint8 scalar quantization."""
    if base.shape[0] == 0:
        dim = base.shape[1]
        return np.zeros(dim, dtype=np.float64), np.ones(dim, dtype=np.float64)
    lo = base.min(axis=0).astype(np.float64)
    hi = base.max(axis=0).astype(np.float64)
    scale = np.maximum((hi - lo) / 255.0, SQ8_SCALE_EPS)
    return lo, scale


def sq8_encode(
    rows: np.ndarray, lo: np.ndarray, scale: np.ndarray
) -> np.ndarray:
    """Quantize float rows to uint8 codes."""
    codes = np.rint((rows.astype(np.float64) - lo) / scale)
    return np.clip(codes, 0, 255).astype(np.uint8)


def sq8_decode(
    codes: np.ndarray, lo: np.ndarray, scale: np.ndarray
) -> np.ndarray:
    """Float64 reconstruction; scans must decode with this exact
    arithmetic so the packed error table keeps bounding them."""
    return codes.astype(np.float64) * scale + lo


def sq8_slice_errors(
    rows: np.ndarray,
    codes: np.ndarray,
    lo: np.ndarray,
    scale: np.ndarray,
    slices,
) -> np.ndarray:
    """Per-row per-slice reconstruction-error norms, rounded *up*.

    ``err[r, s] >= || rows[r, slice_s] - decode(codes[r, slice_s]) ||``
    is the padding that keeps SQ8 pruning bounds lossless. The float32
    cast rounds to nearest (at most half an ulp down), so one
    ``nextafter`` bump toward +inf guarantees the stored value is never
    below the float64 norm.
    """
    diff = rows.astype(np.float64) - sq8_decode(codes, lo, scale)
    err = np.empty((rows.shape[0], slices.n_slices), dtype=np.float64)
    for j in range(slices.n_slices):
        start, stop = slices.slice_range(j)
        seg = diff[:, start:stop]
        err[:, j] = np.sqrt(np.einsum("ij,ij->i", seg, seg))
    return np.nextafter(err.astype(np.float32), np.float32(np.inf))


def _release_owned_segment(shm) -> None:
    """Finalizer body for owner layouts: drop the mapping, free pages.

    Module-level (not a bound method) so the ``weakref.finalize``
    callback holds no reference to the layout; it keeps only the
    ``SharedMemory`` handle alive, which is exactly the resource it
    must release. Runs at most once — :meth:`SharedShardPackedBase.
    unlink` detaches it on the explicit-cleanup path.
    """
    try:
        shm.close()
    except (OSError, BufferError):
        pass
    try:
        shm.unlink()
    except (FileNotFoundError, OSError):
        pass


def _attach_shm(name: str):
    """Attach an existing segment without resource-tracker tracking.

    Before Python 3.13's ``track=False``, attaching by name registers
    the segment with the process's ``resource_tracker``, which (a)
    would unlink the parent-owned segment when a worker exits and (b)
    races other attachers of the same name on the tracker's shared
    set, spraying harmless-but-noisy KeyErrors. Only the creating
    process may own cleanup, so attachers suppress registration.
    """
    from multiprocessing import resource_tracker, shared_memory

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def _stacked_take(
    base: np.ndarray,
    base_sel: np.ndarray,
    delta: np.ndarray,
    delta_sel: np.ndarray,
) -> np.ndarray:
    """Gather base and delta candidate rows into one fresh block.

    The hot path of every mixed base+delta scan: ``np.take`` with
    ``mode="clip"`` writes straight into the preallocated output, so
    each candidate row is copied exactly once — fancy indexing plus
    ``np.concatenate`` would copy everything twice. Indices are
    in-range by construction, so clipping never fires.
    """
    n_base = base_sel.size
    out = np.empty(
        (n_base + delta_sel.size,) + base.shape[1:], dtype=base.dtype
    )
    np.take(base, base_sel, axis=0, out=out[:n_base], mode="clip")
    np.take(delta, delta_sel, axis=0, out=out[n_base:], mode="clip")
    return out


class SplitRows:
    """A base row block and its delta block, indexable as one array.

    SQ8 re-ranking touches exact rows through two operations only —
    fancy indexing with local row indices and ``.shape`` — so the
    base/delta split can stay invisible to the scan classes: indices
    below the base length resolve into the base block, the rest into
    the delta block, positionally identical to indexing their
    concatenation (without ever materializing it).
    """

    __slots__ = ("_base", "_delta")

    def __init__(self, base: np.ndarray, delta: np.ndarray) -> None:
        self._base = base
        self._delta = delta

    @property
    def shape(self) -> tuple[int, int]:
        return (
            self._base.shape[0] + self._delta.shape[0],
            self._base.shape[1],
        )

    def __getitem__(self, idx: np.ndarray) -> np.ndarray:
        idx = np.asarray(idx, dtype=np.intp)
        base_n = self._base.shape[0]
        in_base = idx < base_n
        if in_base.all():
            return self._base[idx]
        out = np.empty(
            (idx.shape[0], self._base.shape[1]), dtype=self._base.dtype
        )
        out[in_base] = self._base[idx[in_base]]
        out[~in_base] = self._delta[idx[~in_base] - base_n]
        return out


class ShardPackedBase:
    """Per-shard contiguous copies of list-member rows, ids, and norms.

    Build with :meth:`build`; query with :meth:`gather`. The base
    arrays are an immutable snapshot of the index at build time;
    streaming mutations land in per-shard delta segments and the
    tombstone mask via :meth:`refresh` — use :meth:`matches` to detect
    staleness and :meth:`can_refresh` to tell "refreshable in place"
    from "needs a full rebuild".

    Attributes:
        version: the index version this layout currently reflects.
        ntotal: base size currently reflected (cheap secondary
            staleness check for indexes that predate the version
            counter).
        index_uid: :attr:`IVFFlatIndex.uid` of the source index; keyed
            into staleness so a reloaded index (version counter reset)
            can never alias a layout packed from its predecessor.
        generation: base-generation id; moves only on full builds
            (including compactions), never on delta refreshes.
        delta_version: bumps on every in-place refresh; the process
            backend syncs its overlay segment when this moves.
    """

    def __init__(
        self,
        rows: "list[np.ndarray]",
        ids: "list[np.ndarray]",
        norms: "list[np.ndarray | None]",
        list_start: np.ndarray,
        list_stop: np.ndarray,
        version: int,
        ntotal: int,
        codes: "list[np.ndarray | None] | None" = None,
        code_err: "list[np.ndarray | None] | None" = None,
        code_lo: np.ndarray | None = None,
        code_scale: np.ndarray | None = None,
        plan: PartitionPlan | None = None,
        index_uid: int = 0,
        generation: int = 0,
        tombstone: np.ndarray | None = None,
        dead_at_build: int = 0,
    ) -> None:
        self._rows = rows
        self._ids = ids
        self._norms = norms
        self._list_start = list_start
        self._list_stop = list_stop
        self.version = version
        self.ntotal = ntotal
        self._codes = codes if codes is not None else [None] * len(rows)
        self._code_err = (
            code_err if code_err is not None else [None] * len(rows)
        )
        self._code_lo = code_lo
        self._code_scale = code_scale
        self._plan = plan
        self.index_uid = index_uid
        self.generation = generation if generation else next(_GENERATIONS)
        self.delta_version = 0
        self._tombstone = (
            tombstone
            if tombstone is not None
            else np.zeros(ntotal, dtype=bool)
        )
        self._dead_at_build = dead_at_build
        self._tombstones_since = 0
        self._with_norms = any(n is not None for n in norms)
        self._init_empty_deltas()

    def _init_empty_deltas(self) -> None:
        n_shards = len(self._rows)
        dim = self._rows[0].shape[1] if n_shards else 0
        n_slices = None
        for err in self._code_err:
            if err is not None:
                n_slices = err.shape[1]
        if n_slices is None and self._with_norms:
            for norm in self._norms:
                if norm is not None:
                    n_slices = norm.shape[1]
        self._drows = [
            GrowableArray(row_shape=(dim,), dtype=np.float32)
            for _ in range(n_shards)
        ]
        self._dids = [
            GrowableArray(dtype=np.int64) for _ in range(n_shards)
        ]
        self._dlists = [
            GrowableArray(dtype=np.int64) for _ in range(n_shards)
        ]
        # float64 to match the base norm table bit-for-bit: slice norms
        # feed the conservative pruning bound, and a float32 round-down
        # (even half an ulp) could unsafely prune a true candidate.
        self._dnorms = [
            GrowableArray(row_shape=(n_slices,), dtype=np.float64)
            if self._with_norms
            else None
            for _ in range(n_shards)
        ]
        with_codes = self._code_lo is not None
        self._dcodes = [
            GrowableArray(row_shape=(dim,), dtype=np.uint8)
            if with_codes
            else None
            for _ in range(n_shards)
        ]
        self._dcode_err = [
            GrowableArray(row_shape=(n_slices,), dtype=np.float32)
            if with_codes
            else None
            for _ in range(n_shards)
        ]

    @classmethod
    def build(
        cls,
        index: "IVFFlatIndex",
        plan: PartitionPlan,
        base_slice_norms: np.ndarray | None = None,
        with_codes: bool = False,
    ) -> "ShardPackedBase":
        """Pack every shard's live list members into contiguous arrays.

        Args:
            index: trained+populated IVF index.
            plan: the partition plan whose shard grouping to pack.
            base_slice_norms: the kernel's per-slice norm table (IP
                metrics); packed alongside the rows so scans never
                index the full table again.
            with_codes: also pack the SQ8 representation — per-shard
                uint8 codes plus the per-row per-slice reconstruction-
                error table that pads the pruning bounds. Quantization
                params are trained on the live base at build time and
                re-homed / invalidated with everything else.
        """
        base = index.base
        rows: list[np.ndarray] = []
        ids: list[np.ndarray] = []
        norms: list[np.ndarray | None] = []
        codes: "list[np.ndarray | None]" = []
        code_err: "list[np.ndarray | None]" = []
        code_lo = code_scale = None
        if with_codes:
            code_lo, code_scale = sq8_train_params(base)
        list_start = np.zeros(index.nlist, dtype=np.int64)
        list_stop = np.zeros(index.nlist, dtype=np.int64)
        for shard in range(plan.n_vector_shards):
            shard_lists = plan.lists_of_shard(shard)
            members = [index.list_members(int(l)) for l in shard_lists]
            offset = 0
            for list_id, member_ids in zip(shard_lists, members):
                list_start[list_id] = offset
                offset += member_ids.size
                list_stop[list_id] = offset
            if members:
                shard_ids = np.concatenate(members).astype(np.int64)
            else:
                shard_ids = np.empty(0, dtype=np.int64)
            ids.append(shard_ids)
            shard_rows = np.ascontiguousarray(base[shard_ids])
            rows.append(shard_rows)
            if base_slice_norms is None:
                norms.append(None)
            else:
                norms.append(
                    np.ascontiguousarray(base_slice_norms[shard_ids])
                )
            if with_codes:
                shard_codes = sq8_encode(shard_rows, code_lo, code_scale)
                codes.append(shard_codes)
                code_err.append(
                    sq8_slice_errors(
                        shard_rows, shard_codes, code_lo, code_scale,
                        plan.slices,
                    )
                )
            else:
                codes.append(None)
                code_err.append(None)
        tombstone = np.array(index.deleted_mask, dtype=bool, copy=True)
        return cls(
            rows=rows,
            ids=ids,
            norms=norms,
            list_start=list_start,
            list_stop=list_stop,
            version=index.version,
            ntotal=index.ntotal,
            codes=codes,
            code_err=code_err,
            code_lo=code_lo,
            code_scale=code_scale,
            plan=plan,
            index_uid=index.uid,
            tombstone=tombstone,
            dead_at_build=int(tombstone.sum()),
        )

    def matches(self, index: "IVFFlatIndex") -> bool:
        """True while the layout still reflects the index's contents.

        Keys on the index *identity* (uid) as well as its mutation
        counters: a reloaded index restarts ``version`` at 0, so the
        counters alone could collide with a stale layout packed from
        the pre-save object.
        """
        return (
            self.index_uid == index.uid
            and self.version == index.version
            and self.ntotal == index.ntotal
        )

    # -- incremental maintenance ---------------------------------------

    def can_refresh(self, index: "IVFFlatIndex") -> bool:
        """True when :meth:`refresh` can absorb the index's mutations.

        The only index mutations are appends (ids grow monotonically)
        and tombstoning (flags flip one way), so any same-uid index
        that has moved forward is refreshable; a different index
        object, or one attached without a plan (worker-side layouts),
        needs a full rebuild.
        """
        return (
            self._plan is not None
            and self.index_uid == index.uid
            and index.ntotal >= self.ntotal
            and index.version >= self.version
        )

    def refresh(
        self,
        index: "IVFFlatIndex",
        new_slice_norms: np.ndarray | None = None,
    ) -> bool:
        """Absorb pending mutations into deltas/tombstones, in place.

        Appended rows are routed to their shard's delta segment (with
        per-slice norms, and SQ8 codes encoded against the *frozen*
        base-generation params — still lossless, because the pruning
        bound is padded by each row's actual reconstruction error and
        survivors re-rank against exact float32). Deletions only flip
        tombstone bits. The base arrays are never touched, so a
        mutation batch costs O(batch + ntotal/8 bits), not a repack.

        Args:
            index: the (mutated) source index; must satisfy
                :meth:`can_refresh`.
            new_slice_norms: per-slice norms of the appended rows
                (``index.base[ntotal_old:]``) when the layout packs
                norms; computed by the caller so the kernel's own norm
                table and the layout stay bitwise in sync.

        Returns:
            True when anything changed (and ``delta_version`` moved).
        """
        if self.matches(index):
            return False
        if not self.can_refresh(index):
            raise RuntimeError(
                "layout cannot be refreshed from this index; rebuild"
            )
        old_n, new_n = self.ntotal, index.ntotal
        if new_n > old_n:
            new_ids = np.arange(old_n, new_n, dtype=np.int64)
            lists = index.assignment_of(new_ids)
            shards = self._plan.shard_of_list[lists]
            if self._with_norms and new_slice_norms is None:
                raise ValueError(
                    "layout packs per-slice norms; refresh needs "
                    "new_slice_norms for the appended rows"
                )
            rows = index.base[old_n:new_n]
            for shard in np.unique(shards):
                sel = np.flatnonzero(shards == shard)
                self._append_delta(
                    int(shard),
                    new_ids[sel],
                    rows[sel],
                    lists[sel],
                    None
                    if new_slice_norms is None
                    else new_slice_norms[sel],
                )
        self._tombstone = np.array(index.deleted_mask, dtype=bool, copy=True)
        self._tombstones_since = (
            int(self._tombstone.sum()) - self._dead_at_build
        )
        self.version = index.version
        self.ntotal = new_n
        self.delta_version += 1
        return True

    def _append_delta(
        self,
        shard: int,
        ids: np.ndarray,
        rows: np.ndarray,
        lists: np.ndarray,
        norms: np.ndarray | None,
    ) -> None:
        rows = np.ascontiguousarray(rows, dtype=np.float32)
        self._drows[shard].append(rows)
        self._dids[shard].append(ids)
        self._dlists[shard].append(lists)
        if self._dnorms[shard] is not None:
            self._dnorms[shard].append(norms)
        if self._dcodes[shard] is not None:
            codes = sq8_encode(rows, self._code_lo, self._code_scale)
            self._dcodes[shard].append(codes)
            self._dcode_err[shard].append(
                sq8_slice_errors(
                    rows, codes, self._code_lo, self._code_scale,
                    self._plan.slices,
                )
            )

    @property
    def delta_rows(self) -> int:
        """Rows currently living in delta segments (all shards)."""
        return int(sum(len(d) for d in self._dids))

    @property
    def tombstones_since(self) -> int:
        """Rows tombstoned since this base generation was packed."""
        return int(self._tombstones_since)

    def should_compact(self, ratio: float) -> bool:
        """True when deltas + tombstones exceed ``ratio`` of the base."""
        base_rows = sum(ids.size for ids in self._ids)
        pending = self.delta_rows + self.tombstones_since
        return pending > ratio * max(1, base_rows)

    @property
    def n_shards(self) -> int:
        return len(self._rows)

    def shard_size(self, shard: int) -> int:
        """Packed row count of one shard (base + delta segments)."""
        return self._ids[shard].size + len(self._dids[shard])

    @property
    def nbytes(self) -> int:
        """Total bytes held by the packed arrays (base + deltas)."""
        total = 0
        for arrays in (
            self._rows, self._ids, self._norms, self._codes, self._code_err
        ):
            for arr in arrays:
                if arr is not None:
                    total += arr.nbytes
        for buffers in (
            self._drows, self._dids, self._dlists, self._dnorms,
            self._dcodes, self._dcode_err,
        ):
            for buf in buffers:
                if buf is not None:
                    total += buf.nbytes
        if self._list_start is not None:
            total += self._list_start.nbytes + self._list_stop.nbytes
        total += self._tombstone.nbytes
        for arr in (self._code_lo, self._code_scale):
            if arr is not None:
                total += arr.nbytes
        return int(total)

    @property
    def has_codes(self) -> bool:
        """True when the SQ8 representation was packed alongside rows."""
        return (
            self._code_lo is not None
            and self._code_scale is not None
            and all(c is not None for c in self._codes)
            and all(e is not None for e in self._code_err)
        )

    @property
    def code_lo(self) -> np.ndarray | None:
        """Per-dimension dequantization offset (float64)."""
        return self._code_lo

    @property
    def code_scale(self) -> np.ndarray | None:
        """Per-dimension dequantization step (float64, positive)."""
        return self._code_scale

    @property
    def rows_nbytes(self) -> int:
        """Bytes of the float32 row blocks alone (base + delta)."""
        return int(
            sum(arr.nbytes for arr in self._rows)
            + sum(buf.nbytes for buf in self._drows)
        )

    @property
    def codes_nbytes(self) -> int:
        """Bytes of the uint8 code blocks alone (0 without codes)."""
        return int(
            sum(arr.nbytes for arr in self._codes if arr is not None)
            + sum(buf.nbytes for buf in self._dcodes if buf is not None)
        )

    @property
    def code_overhead_nbytes(self) -> int:
        """Bytes of the SQ8 side tables (error norms + dequant params)."""
        total = sum(
            arr.nbytes for arr in self._code_err if arr is not None
        )
        total += sum(
            buf.nbytes for buf in self._dcode_err if buf is not None
        )
        for arr in (self._code_lo, self._code_scale):
            if arr is not None:
                total += arr.nbytes
        return int(total)

    def gather(
        self,
        shard: int,
        lists: np.ndarray,
        allowed: np.ndarray | None = None,
        exclude: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        """Candidate (ids, rows, norms) for the probed lists of a shard.

        Rows come back list-by-list in packed (insertion) order — a
        different candidate order than the legacy ascending-id gather,
        which is harmless because heap retention is order-independent.

        Args:
            shard: vector shard to gather from.
            lists: probed inverted-list ids living in this shard.
            allowed: optional per-global-id admissibility mask.
            exclude: optional per-global-id mask of ids to drop
                (e.g. already-prewarmed candidates).

        Returns:
            ``(ids, rows, norms)`` — global ids, a fresh float32 row
            block, and the matching per-slice norm block (None for L2).
        """
        local, ids = self._base_candidates(shard, lists, allowed, exclude)
        dsel, dids = self._delta_candidates(shard, lists, allowed, exclude)
        if dsel is None:
            if local is None:
                return (
                    np.empty(0, dtype=np.int64),
                    np.empty(
                        (0, self._rows[shard].shape[1]), dtype=np.float32
                    ),
                    None,
                )
            rows = self._rows[shard][local]
            shard_norms = self._norms[shard]
            norms = None if shard_norms is None else shard_norms[local]
            return ids, rows, norms
        drow_buf = self._drows[shard].view
        dnorm_buf = self._dnorms[shard]
        if local is None:
            dnorms = None if dnorm_buf is None else dnorm_buf.view[dsel]
            return dids, drow_buf[dsel], dnorms
        ids = np.concatenate([ids, dids])
        rows = _stacked_take(self._rows[shard], local, drow_buf, dsel)
        shard_norms = self._norms[shard]
        norms = (
            None
            if shard_norms is None
            else _stacked_take(shard_norms, local, dnorm_buf.view, dsel)
        )
        return ids, rows, norms

    def _base_candidates(
        self,
        shard: int,
        lists: np.ndarray,
        allowed: np.ndarray | None,
        exclude: np.ndarray | None,
    ) -> "tuple[np.ndarray | None, np.ndarray | None]":
        """Masked (local indices, global ids) of base-block candidates."""
        shard_ids = self._ids[shard]
        parts = []
        for list_id in np.asarray(lists, dtype=np.int64):
            start = self._list_start[list_id]
            stop = self._list_stop[list_id]
            if stop > start:
                parts.append(np.arange(start, stop, dtype=np.intp))
        if not parts:
            return None, None
        local = np.concatenate(parts) if len(parts) > 1 else parts[0]
        ids = shard_ids[local]
        mask = self._candidate_mask(ids, allowed, exclude)
        if mask is not None:
            local = local[mask]
            ids = ids[mask]
            if ids.size == 0:
                return None, None
        return local, ids

    def _delta_candidates(
        self,
        shard: int,
        lists: np.ndarray,
        allowed: np.ndarray | None,
        exclude: np.ndarray | None,
    ) -> "tuple[np.ndarray | None, np.ndarray | None]":
        """Masked (delta indices, global ids) of delta-segment candidates.

        Delta rows are appended in arrival order regardless of list;
        membership is a linear pass over the per-shard list tags via a
        probed-list lookup table — fine, because compaction bounds the
        delta size to a fraction of the base.
        """
        dlists = self._dlists[shard].view
        if dlists.size == 0:
            return None, None
        probed = np.zeros(self._list_start.size, dtype=bool)
        probed[np.asarray(lists, dtype=np.int64)] = True
        sel = np.flatnonzero(probed[dlists])
        if sel.size == 0:
            return None, None
        ids = self._dids[shard].view[sel]
        mask = self._candidate_mask(ids, allowed, exclude)
        if mask is not None:
            sel = sel[mask]
            ids = ids[mask]
            if ids.size == 0:
                return None, None
        return sel, ids

    def _candidate_mask(
        self,
        ids: np.ndarray,
        allowed: np.ndarray | None,
        exclude: np.ndarray | None,
    ) -> np.ndarray | None:
        """Combined admissibility/tombstone mask, or None to keep all."""
        mask = None
        if allowed is not None:
            mask = allowed[ids]
        if exclude is not None:
            drop = ~exclude[ids]
            mask = drop if mask is None else mask & drop
        if self._tombstones_since:
            live = ~self._tombstone[ids]
            mask = live if mask is None else mask & live
        if mask is None or mask.all():
            return None
        return mask

    def gather_sq8(
        self,
        shard: int,
        lists: np.ndarray,
        allowed: np.ndarray | None = None,
        exclude: np.ndarray | None = None,
    ) -> tuple:
        """SQ8 candidate blocks plus a lazy handle on the exact rows.

        The SQ8 sibling of :meth:`gather`: the scan reads the compact
        uint8 representation, and only the few candidates that survive
        pruning ever touch float32 — via ``rows_full[local]`` at
        re-rank time.

        Returns:
            ``(ids, codes, err, norms, rows_full, local)`` — global
            ids, fresh uint8 code and float32 error-norm blocks, the
            per-slice norm block (None for L2), the shard's full exact
            row storage (a :class:`SplitRows` over the base and delta
            blocks, not copied), and each candidate's row index into
            it.
        """
        if not self.has_codes:
            raise RuntimeError("layout was packed without SQ8 codes")
        base_n = self._rows[shard].shape[0]
        rows_full = SplitRows(self._rows[shard], self._drows[shard].view)
        local, ids = self._base_candidates(shard, lists, allowed, exclude)
        dsel, dids = self._delta_candidates(shard, lists, allowed, exclude)
        if local is None and dsel is None:
            n_slices = self._code_err[shard].shape[1]
            return (
                np.empty(0, dtype=np.int64),
                np.empty((0, rows_full.shape[1]), dtype=np.uint8),
                np.empty((0, n_slices), dtype=np.float32),
                None,
                rows_full,
                np.empty(0, dtype=np.intp),
            )
        shard_norms = self._norms[shard]
        if dsel is None:
            codes = self._codes[shard][local]
            err = self._code_err[shard][local]
            norms = None if shard_norms is None else shard_norms[local]
            return ids, codes, err, norms, rows_full, local
        dcode_buf = self._dcodes[shard].view
        derr_buf = self._dcode_err[shard].view
        dnorm_buf = self._dnorms[shard]
        dlocal = (base_n + dsel).astype(np.intp)
        if local is None:
            dnorms = None if dnorm_buf is None else dnorm_buf.view[dsel]
            return (
                dids,
                dcode_buf[dsel],
                derr_buf[dsel],
                dnorms,
                rows_full,
                dlocal,
            )
        ids = np.concatenate([ids, dids])
        codes = _stacked_take(self._codes[shard], local, dcode_buf, dsel)
        err = _stacked_take(self._code_err[shard], local, derr_buf, dsel)
        norms = (
            None
            if shard_norms is None
            else _stacked_take(shard_norms, local, dnorm_buf.view, dsel)
        )
        local = np.concatenate([local, dlocal])
        return ids, codes, err, norms, rows_full, local


class SharedShardPackedBase(ShardPackedBase):
    """A :class:`ShardPackedBase` whose arrays live in shared memory.

    The process backend's zero-copy data plane: the parent packs every
    shard's rows / ids / norms into **one**
    :class:`multiprocessing.shared_memory.SharedMemory` segment
    (:meth:`from_packed`), ships only the tiny :meth:`manifest` —
    segment name plus per-array ``(offset, shape, dtype)`` records —
    to each worker, and workers :meth:`attach` as numpy views over the
    same physical pages. No vector bytes are ever pickled or copied
    across the process boundary; staleness is keyed by the same
    ``(version, ntotal)`` pair as the in-process packed cache.

    Lifecycle: the creating process calls :meth:`unlink` (usually via
    the owning backend's ``close()``) exactly once; every process —
    creator and attachers — calls :meth:`close` to drop its mapping.
    The segment persists until the last mapping closes, so the parent
    may safely unlink a stale layout while workers still scan it.
    A ``weakref.finalize`` guard on owner layouts frees the segment
    at garbage collection or interpreter exit even when ``unlink``
    was never called, so a crashed or careless caller cannot leak
    ``/dev/shm`` pages for the life of the machine.
    """

    def __init__(self, *args, shm=None, owner=False, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._shm = shm
        self._owner = owner
        self._spec: dict = {}
        self._finalizer = (
            weakref.finalize(self, _release_owned_segment, shm)
            if owner and shm is not None
            else None
        )
        # Overlay segment: a small, frequently re-published mirror of
        # the delta segments + tombstone mask. The base segment above
        # is immutable for the life of its generation; only this
        # overlay moves when mutations are absorbed.
        self._overlay_shm = None
        self._overlay_spec: dict = {}
        self._overlay_version = -1
        self._overlay_finalizer = None

    # -- construction ---------------------------------------------------

    @classmethod
    def from_packed(cls, packed: ShardPackedBase) -> "SharedShardPackedBase":
        """Re-home an existing packed layout into one shared segment."""
        from multiprocessing import shared_memory

        arrays: list[tuple[str, np.ndarray]] = []
        for shard in range(packed.n_shards):
            arrays.append((f"rows{shard}", packed._rows[shard]))
            arrays.append((f"ids{shard}", packed._ids[shard]))
            if packed._norms[shard] is not None:
                arrays.append((f"norms{shard}", packed._norms[shard]))
            if packed._codes[shard] is not None:
                arrays.append((f"codes{shard}", packed._codes[shard]))
                arrays.append((f"code_err{shard}", packed._code_err[shard]))
        arrays.append(("list_start", packed._list_start))
        arrays.append(("list_stop", packed._list_stop))
        if packed._code_lo is not None:
            arrays.append(("code_lo", packed._code_lo))
            arrays.append(("code_scale", packed._code_scale))

        total = sum(arr.nbytes for _, arr in arrays)
        shm = shared_memory.SharedMemory(create=True, size=max(1, total))
        offset = 0
        spec: dict[str, tuple[int, tuple, str]] = {}
        views: dict[str, np.ndarray] = {}
        for key, arr in arrays:
            view = np.ndarray(
                arr.shape, dtype=arr.dtype, buffer=shm.buf, offset=offset
            )
            view[...] = arr
            spec[key] = (offset, tuple(arr.shape), arr.dtype.str)
            views[key] = view
            offset += arr.nbytes

        layout = cls(
            rows=[views[f"rows{s}"] for s in range(packed.n_shards)],
            ids=[views[f"ids{s}"] for s in range(packed.n_shards)],
            norms=[
                views.get(f"norms{s}") for s in range(packed.n_shards)
            ],
            list_start=views["list_start"],
            list_stop=views["list_stop"],
            version=packed.version,
            ntotal=packed.ntotal,
            codes=[
                views.get(f"codes{s}") for s in range(packed.n_shards)
            ],
            code_err=[
                views.get(f"code_err{s}") for s in range(packed.n_shards)
            ],
            code_lo=views.get("code_lo"),
            code_scale=views.get("code_scale"),
            plan=packed._plan,
            index_uid=packed.index_uid,
            generation=packed.generation,
            tombstone=packed._tombstone,
            dead_at_build=packed._dead_at_build,
            shm=shm,
            owner=True,
        )
        layout._spec = spec
        layout._adopt_delta_state(packed)
        return layout

    def _adopt_delta_state(self, packed: ShardPackedBase) -> None:
        """Take over the source layout's delta segments wholesale.

        The owner keeps deltas in private (host-memory) growth buffers
        — they stay small by construction, bounded by the compaction
        ratio — and mirrors them into the overlay segment on
        :meth:`sync_overlay`.
        """
        self._drows = packed._drows
        self._dids = packed._dids
        self._dlists = packed._dlists
        self._dnorms = packed._dnorms
        self._dcodes = packed._dcodes
        self._dcode_err = packed._dcode_err
        self._tombstone = packed._tombstone
        self._dead_at_build = packed._dead_at_build
        self._tombstones_since = packed._tombstones_since
        self.delta_version = packed.delta_version

    @classmethod
    def build(
        cls,
        index: "IVFFlatIndex",
        plan: PartitionPlan,
        base_slice_norms: np.ndarray | None = None,
        with_codes: bool = False,
    ) -> "SharedShardPackedBase":
        """Pack straight into shared memory (build + re-home)."""
        packed = ShardPackedBase.build(
            index, plan,
            base_slice_norms=base_slice_norms,
            with_codes=with_codes,
        )
        return cls.from_packed(packed)

    # -- cross-process plumbing ----------------------------------------

    def manifest(self) -> dict:
        """Picklable description a worker passes to :meth:`attach`.

        ``shm_name`` is the immutable base generation's segment;
        ``overlay`` (None until the first post-build mutation) names
        the current delta/tombstone mirror. Workers key their cached
        attachment on the pair, so delta-only refreshes re-map just
        the small overlay.
        """
        if self._shm is None:
            raise RuntimeError("layout is not backed by shared memory")
        overlay = None
        if self._overlay_shm is not None:
            overlay = {
                "shm_name": self._overlay_shm.name,
                "spec": dict(self._overlay_spec),
                "delta_version": self._overlay_version,
            }
        return {
            "shm_name": self._shm.name,
            "n_shards": self.n_shards,
            "spec": dict(self._spec),
            "version": self.version,
            "ntotal": self.ntotal,
            "uid": self.index_uid,
            "generation": self.generation,
            "dead_at_build": self._dead_at_build,
            "tombstones_since": self._tombstones_since,
            "overlay": overlay,
        }

    def sync_overlay(self) -> bool:
        """Publish the current deltas + tombstones as a fresh overlay.

        No-op while the overlay already mirrors ``delta_version``.
        Otherwise writes all delta arrays and the tombstone mask into
        a new (small) shared segment and retires the previous one —
        workers still scanning it keep valid mappings until they
        close; new dispatches attach the replacement. The base segment
        is untouched, so a delta-only mutation batch never re-homes
        the bulk of the layout.

        Returns:
            True when a new overlay segment was published.
        """
        if (
            self._overlay_shm is not None
            and self._overlay_version == self.delta_version
        ):
            return False
        from multiprocessing import shared_memory

        arrays: list[tuple[str, np.ndarray]] = [
            ("tombstone", self._tombstone)
        ]
        for shard in range(self.n_shards):
            arrays.append((f"drows{shard}", self._drows[shard].view))
            arrays.append((f"dids{shard}", self._dids[shard].view))
            arrays.append((f"dlists{shard}", self._dlists[shard].view))
            if self._dnorms[shard] is not None:
                arrays.append((f"dnorms{shard}", self._dnorms[shard].view))
            if self._dcodes[shard] is not None:
                arrays.append((f"dcodes{shard}", self._dcodes[shard].view))
                arrays.append(
                    (f"dcode_err{shard}", self._dcode_err[shard].view)
                )
        total = sum(arr.nbytes for _, arr in arrays)
        shm = shared_memory.SharedMemory(create=True, size=max(1, total))
        offset = 0
        spec: dict[str, tuple[int, tuple, str]] = {}
        for key, arr in arrays:
            view = np.ndarray(
                arr.shape, dtype=arr.dtype, buffer=shm.buf, offset=offset
            )
            view[...] = arr
            spec[key] = (offset, tuple(arr.shape), arr.dtype.str)
            offset += arr.nbytes
        self._retire_overlay()
        self._overlay_shm = shm
        self._overlay_spec = spec
        self._overlay_version = self.delta_version
        if self._owner:
            self._overlay_finalizer = weakref.finalize(
                self, _release_owned_segment, shm
            )
        return True

    def _retire_overlay(self) -> None:
        shm, self._overlay_shm = self._overlay_shm, None
        finalizer, self._overlay_finalizer = self._overlay_finalizer, None
        if finalizer is not None:
            finalizer.detach()
        self._overlay_spec = {}
        self._overlay_version = -1
        if shm is not None:
            try:
                shm.close()
            except (OSError, BufferError):
                pass
            if self._owner:
                try:
                    shm.unlink()
                except (FileNotFoundError, OSError):
                    pass

    @classmethod
    def attach(cls, manifest: dict) -> "SharedShardPackedBase":
        """Map an existing segment read-only-by-convention, zero-copy."""
        shm = _attach_shm(manifest["shm_name"])
        spec = manifest["spec"]

        def view(key: str) -> np.ndarray | None:
            if key not in spec:
                return None
            offset, shape, dtype = spec[key]
            return np.ndarray(
                shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=offset
            )

        n_shards = manifest["n_shards"]
        layout = cls(
            rows=[view(f"rows{s}") for s in range(n_shards)],
            ids=[view(f"ids{s}") for s in range(n_shards)],
            norms=[view(f"norms{s}") for s in range(n_shards)],
            list_start=view("list_start"),
            list_stop=view("list_stop"),
            version=manifest["version"],
            ntotal=manifest["ntotal"],
            codes=[view(f"codes{s}") for s in range(n_shards)],
            code_err=[view(f"code_err{s}") for s in range(n_shards)],
            code_lo=view("code_lo"),
            code_scale=view("code_scale"),
            index_uid=manifest.get("uid", 0),
            generation=manifest.get("generation", 0),
            shm=shm,
            owner=False,
        )
        layout._spec = dict(spec)
        overlay = manifest.get("overlay")
        if overlay is not None:
            layout._attach_overlay(manifest, overlay)
        return layout

    def _attach_overlay(self, manifest: dict, overlay: dict) -> None:
        """Map the delta/tombstone overlay alongside the base views."""
        shm = _attach_shm(overlay["shm_name"])
        spec = overlay["spec"]

        def view(key: str) -> np.ndarray | None:
            if key not in spec:
                return None
            offset, shape, dtype = spec[key]
            return np.ndarray(
                shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=offset
            )

        def wrap(key: str):
            arr = view(key)
            return None if arr is None else GrowableArray.wrap(arr)

        n_shards = self.n_shards
        self._drows = [wrap(f"drows{s}") for s in range(n_shards)]
        self._dids = [wrap(f"dids{s}") for s in range(n_shards)]
        self._dlists = [wrap(f"dlists{s}") for s in range(n_shards)]
        self._dnorms = [wrap(f"dnorms{s}") for s in range(n_shards)]
        self._dcodes = [wrap(f"dcodes{s}") for s in range(n_shards)]
        self._dcode_err = [wrap(f"dcode_err{s}") for s in range(n_shards)]
        self._tombstone = view("tombstone")
        self._dead_at_build = manifest.get("dead_at_build", 0)
        self._tombstones_since = manifest.get("tombstones_since", 0)
        self.delta_version = overlay.get("delta_version", 0)
        self._overlay_shm = shm
        self._overlay_spec = dict(spec)
        self._overlay_version = self.delta_version

    # -- lifecycle ------------------------------------------------------

    @property
    def shm_name(self) -> str | None:
        return None if self._shm is None else self._shm.name

    def close(self) -> None:
        """Drop this process's mappings (views become invalid)."""
        shm, self._shm = self._shm, None
        self._rows = self._ids = self._norms = []  # release buffer refs
        self._codes = self._code_err = []
        self._drows = self._dids = self._dlists = []
        self._dnorms = self._dcodes = self._dcode_err = []
        self._tombstone = np.zeros(0, dtype=bool)
        self._list_start = self._list_stop = None
        self._code_lo = self._code_scale = None
        self._retire_overlay()
        if shm is not None:
            try:
                shm.close()
            except (OSError, BufferError):
                pass

    def unlink(self) -> None:
        """Free the segments (creator only); also closes the mappings."""
        shm = self._shm
        owner = self._owner
        finalizer, self._finalizer = self._finalizer, None
        if finalizer is not None:
            finalizer.detach()
        self.close()  # retires the overlay (unlinking it when owner)
        self._owner = False
        if shm is not None and owner:
            try:
                shm.unlink()
            except (FileNotFoundError, OSError):
                pass
