"""Packed shard-major base layouts (the batched executor's data plane).

Candidate gathering used to fancy-index the full base matrix once per
(query, shard) — exactly the scattered DRAM traffic that dominates
IVF scan cost at scale. :class:`ShardPackedBase` instead packs each
vector shard's list members (and, for the inner-product family, their
per-slice norms) into contiguous float32 arrays at plan time, ordered
list-by-list, with a per-list local row range. Gathering a query's
candidates then reduces to concatenating a handful of ``arange`` ranges
and one fancy-index into a small shard-local array — cheap, cache-
friendly, and independent of the total base size.

The packed copy is a pure cache: :class:`~repro.core.executor.kernel.
ScanKernel` builds it lazily and drops it whenever the index's
:attr:`~repro.index.ivf.IVFFlatIndex.version` moves (streaming adds or
deletes), mirroring the existing ``_base_slice_norms`` refresh.
"""

from __future__ import annotations

import weakref

import numpy as np

from repro.core.partition import PartitionPlan

#: Smallest admissible per-dimension quantization step. Constant
#: columns have zero span; without the clamp encode would divide by a
#: zero (or denormal) scale. Any positive step is exact for them:
#: every code lands on 0 and decodes back to ``lo``.
SQ8_SCALE_EPS = 1e-12


def sq8_train_params(base: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
    """Per-dimension ``(lo, scale)`` for uint8 scalar quantization."""
    if base.shape[0] == 0:
        dim = base.shape[1]
        return np.zeros(dim, dtype=np.float64), np.ones(dim, dtype=np.float64)
    lo = base.min(axis=0).astype(np.float64)
    hi = base.max(axis=0).astype(np.float64)
    scale = np.maximum((hi - lo) / 255.0, SQ8_SCALE_EPS)
    return lo, scale


def sq8_encode(
    rows: np.ndarray, lo: np.ndarray, scale: np.ndarray
) -> np.ndarray:
    """Quantize float rows to uint8 codes."""
    codes = np.rint((rows.astype(np.float64) - lo) / scale)
    return np.clip(codes, 0, 255).astype(np.uint8)


def sq8_decode(
    codes: np.ndarray, lo: np.ndarray, scale: np.ndarray
) -> np.ndarray:
    """Float64 reconstruction; scans must decode with this exact
    arithmetic so the packed error table keeps bounding them."""
    return codes.astype(np.float64) * scale + lo


def sq8_slice_errors(
    rows: np.ndarray,
    codes: np.ndarray,
    lo: np.ndarray,
    scale: np.ndarray,
    slices,
) -> np.ndarray:
    """Per-row per-slice reconstruction-error norms, rounded *up*.

    ``err[r, s] >= || rows[r, slice_s] - decode(codes[r, slice_s]) ||``
    is the padding that keeps SQ8 pruning bounds lossless. The float32
    cast rounds to nearest (at most half an ulp down), so one
    ``nextafter`` bump toward +inf guarantees the stored value is never
    below the float64 norm.
    """
    diff = rows.astype(np.float64) - sq8_decode(codes, lo, scale)
    err = np.empty((rows.shape[0], slices.n_slices), dtype=np.float64)
    for j in range(slices.n_slices):
        start, stop = slices.slice_range(j)
        seg = diff[:, start:stop]
        err[:, j] = np.sqrt(np.einsum("ij,ij->i", seg, seg))
    return np.nextafter(err.astype(np.float32), np.float32(np.inf))


def _release_owned_segment(shm) -> None:
    """Finalizer body for owner layouts: drop the mapping, free pages.

    Module-level (not a bound method) so the ``weakref.finalize``
    callback holds no reference to the layout; it keeps only the
    ``SharedMemory`` handle alive, which is exactly the resource it
    must release. Runs at most once — :meth:`SharedShardPackedBase.
    unlink` detaches it on the explicit-cleanup path.
    """
    try:
        shm.close()
    except (OSError, BufferError):
        pass
    try:
        shm.unlink()
    except (FileNotFoundError, OSError):
        pass


def _attach_shm(name: str):
    """Attach an existing segment without resource-tracker tracking.

    Before Python 3.13's ``track=False``, attaching by name registers
    the segment with the process's ``resource_tracker``, which (a)
    would unlink the parent-owned segment when a worker exits and (b)
    races other attachers of the same name on the tracker's shared
    set, spraying harmless-but-noisy KeyErrors. Only the creating
    process may own cleanup, so attachers suppress registration.
    """
    from multiprocessing import resource_tracker, shared_memory

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


class ShardPackedBase:
    """Per-shard contiguous copies of list-member rows, ids, and norms.

    Build with :meth:`build`; query with :meth:`gather`. All arrays are
    immutable snapshots of the index at build time — use
    :meth:`matches` to detect staleness.

    Attributes:
        version: the index version this layout was packed from.
        ntotal: base size at build time (cheap secondary staleness
            check for indexes that predate the version counter).
    """

    def __init__(
        self,
        rows: "list[np.ndarray]",
        ids: "list[np.ndarray]",
        norms: "list[np.ndarray | None]",
        list_start: np.ndarray,
        list_stop: np.ndarray,
        version: int,
        ntotal: int,
        codes: "list[np.ndarray | None] | None" = None,
        code_err: "list[np.ndarray | None] | None" = None,
        code_lo: np.ndarray | None = None,
        code_scale: np.ndarray | None = None,
    ) -> None:
        self._rows = rows
        self._ids = ids
        self._norms = norms
        self._list_start = list_start
        self._list_stop = list_stop
        self.version = version
        self.ntotal = ntotal
        self._codes = codes if codes is not None else [None] * len(rows)
        self._code_err = (
            code_err if code_err is not None else [None] * len(rows)
        )
        self._code_lo = code_lo
        self._code_scale = code_scale

    @classmethod
    def build(
        cls,
        index: "IVFFlatIndex",
        plan: PartitionPlan,
        base_slice_norms: np.ndarray | None = None,
        with_codes: bool = False,
    ) -> "ShardPackedBase":
        """Pack every shard's live list members into contiguous arrays.

        Args:
            index: trained+populated IVF index.
            plan: the partition plan whose shard grouping to pack.
            base_slice_norms: the kernel's per-slice norm table (IP
                metrics); packed alongside the rows so scans never
                index the full table again.
            with_codes: also pack the SQ8 representation — per-shard
                uint8 codes plus the per-row per-slice reconstruction-
                error table that pads the pruning bounds. Quantization
                params are trained on the live base at build time and
                re-homed / invalidated with everything else.
        """
        base = index.base
        rows: list[np.ndarray] = []
        ids: list[np.ndarray] = []
        norms: list[np.ndarray | None] = []
        codes: "list[np.ndarray | None]" = []
        code_err: "list[np.ndarray | None]" = []
        code_lo = code_scale = None
        if with_codes:
            code_lo, code_scale = sq8_train_params(base)
        list_start = np.zeros(index.nlist, dtype=np.int64)
        list_stop = np.zeros(index.nlist, dtype=np.int64)
        for shard in range(plan.n_vector_shards):
            shard_lists = plan.lists_of_shard(shard)
            members = [index.list_members(int(l)) for l in shard_lists]
            offset = 0
            for list_id, member_ids in zip(shard_lists, members):
                list_start[list_id] = offset
                offset += member_ids.size
                list_stop[list_id] = offset
            if members:
                shard_ids = np.concatenate(members).astype(np.int64)
            else:
                shard_ids = np.empty(0, dtype=np.int64)
            ids.append(shard_ids)
            shard_rows = np.ascontiguousarray(base[shard_ids])
            rows.append(shard_rows)
            if base_slice_norms is None:
                norms.append(None)
            else:
                norms.append(
                    np.ascontiguousarray(base_slice_norms[shard_ids])
                )
            if with_codes:
                shard_codes = sq8_encode(shard_rows, code_lo, code_scale)
                codes.append(shard_codes)
                code_err.append(
                    sq8_slice_errors(
                        shard_rows, shard_codes, code_lo, code_scale,
                        plan.slices,
                    )
                )
            else:
                codes.append(None)
                code_err.append(None)
        return cls(
            rows=rows,
            ids=ids,
            norms=norms,
            list_start=list_start,
            list_stop=list_stop,
            version=index.version,
            ntotal=index.ntotal,
            codes=codes,
            code_err=code_err,
            code_lo=code_lo,
            code_scale=code_scale,
        )

    def matches(self, index: "IVFFlatIndex") -> bool:
        """True while the layout still reflects the index's contents."""
        return (
            self.version == index.version and self.ntotal == index.ntotal
        )

    @property
    def n_shards(self) -> int:
        return len(self._rows)

    def shard_size(self, shard: int) -> int:
        """Packed (live) row count of one shard."""
        return self._ids[shard].size

    @property
    def nbytes(self) -> int:
        """Total bytes held by the packed arrays."""
        total = 0
        for arrays in (
            self._rows, self._ids, self._norms, self._codes, self._code_err
        ):
            for arr in arrays:
                if arr is not None:
                    total += arr.nbytes
        total += self._list_start.nbytes + self._list_stop.nbytes
        for arr in (self._code_lo, self._code_scale):
            if arr is not None:
                total += arr.nbytes
        return int(total)

    @property
    def has_codes(self) -> bool:
        """True when the SQ8 representation was packed alongside rows."""
        return (
            self._code_lo is not None
            and self._code_scale is not None
            and all(c is not None for c in self._codes)
            and all(e is not None for e in self._code_err)
        )

    @property
    def code_lo(self) -> np.ndarray | None:
        """Per-dimension dequantization offset (float64)."""
        return self._code_lo

    @property
    def code_scale(self) -> np.ndarray | None:
        """Per-dimension dequantization step (float64, positive)."""
        return self._code_scale

    @property
    def rows_nbytes(self) -> int:
        """Bytes of the float32 row blocks alone."""
        return int(sum(arr.nbytes for arr in self._rows))

    @property
    def codes_nbytes(self) -> int:
        """Bytes of the uint8 code blocks alone (0 without codes)."""
        return int(
            sum(arr.nbytes for arr in self._codes if arr is not None)
        )

    @property
    def code_overhead_nbytes(self) -> int:
        """Bytes of the SQ8 side tables (error norms + dequant params)."""
        total = sum(
            arr.nbytes for arr in self._code_err if arr is not None
        )
        for arr in (self._code_lo, self._code_scale):
            if arr is not None:
                total += arr.nbytes
        return int(total)

    def gather(
        self,
        shard: int,
        lists: np.ndarray,
        allowed: np.ndarray | None = None,
        exclude: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        """Candidate (ids, rows, norms) for the probed lists of a shard.

        Rows come back list-by-list in packed (insertion) order — a
        different candidate order than the legacy ascending-id gather,
        which is harmless because heap retention is order-independent.

        Args:
            shard: vector shard to gather from.
            lists: probed inverted-list ids living in this shard.
            allowed: optional per-global-id admissibility mask.
            exclude: optional per-global-id mask of ids to drop
                (e.g. already-prewarmed candidates).

        Returns:
            ``(ids, rows, norms)`` — global ids, a fresh float32 row
            block, and the matching per-slice norm block (None for L2).
        """
        shard_ids = self._ids[shard]
        parts = []
        for list_id in np.asarray(lists, dtype=np.int64):
            start = self._list_start[list_id]
            stop = self._list_stop[list_id]
            if stop > start:
                parts.append(np.arange(start, stop, dtype=np.intp))
        if not parts:
            empty_ids = np.empty(0, dtype=np.int64)
            empty_rows = np.empty(
                (0, self._rows[shard].shape[1]), dtype=np.float32
            )
            return empty_ids, empty_rows, None
        local = np.concatenate(parts) if len(parts) > 1 else parts[0]
        ids = shard_ids[local]
        if allowed is not None or exclude is not None:
            mask = np.ones(ids.size, dtype=bool)
            if allowed is not None:
                mask &= allowed[ids]
            if exclude is not None:
                mask &= ~exclude[ids]
            if not mask.all():
                local = local[mask]
                ids = ids[mask]
        rows = self._rows[shard][local]
        shard_norms = self._norms[shard]
        norms = None if shard_norms is None else shard_norms[local]
        return ids, rows, norms

    def gather_sq8(
        self,
        shard: int,
        lists: np.ndarray,
        allowed: np.ndarray | None = None,
        exclude: np.ndarray | None = None,
    ) -> tuple:
        """SQ8 candidate blocks plus a lazy handle on the exact rows.

        The SQ8 sibling of :meth:`gather`: the scan reads the compact
        uint8 representation, and only the few candidates that survive
        pruning ever touch float32 — via ``rows_full[local]`` at
        re-rank time.

        Returns:
            ``(ids, codes, err, norms, rows_full, local)`` — global
            ids, fresh uint8 code and float32 error-norm blocks, the
            per-slice norm block (None for L2), the shard's *full*
            float32 row array (not copied), and each candidate's row
            index into it.
        """
        if not self.has_codes:
            raise RuntimeError("layout was packed without SQ8 codes")
        shard_ids = self._ids[shard]
        parts = []
        for list_id in np.asarray(lists, dtype=np.int64):
            start = self._list_start[list_id]
            stop = self._list_stop[list_id]
            if stop > start:
                parts.append(np.arange(start, stop, dtype=np.intp))
        rows_full = self._rows[shard]
        if not parts:
            n_slices = self._code_err[shard].shape[1]
            return (
                np.empty(0, dtype=np.int64),
                np.empty((0, rows_full.shape[1]), dtype=np.uint8),
                np.empty((0, n_slices), dtype=np.float32),
                None,
                rows_full,
                np.empty(0, dtype=np.intp),
            )
        local = np.concatenate(parts) if len(parts) > 1 else parts[0]
        ids = shard_ids[local]
        if allowed is not None or exclude is not None:
            mask = np.ones(ids.size, dtype=bool)
            if allowed is not None:
                mask &= allowed[ids]
            if exclude is not None:
                mask &= ~exclude[ids]
            if not mask.all():
                local = local[mask]
                ids = ids[mask]
        codes = self._codes[shard][local]
        err = self._code_err[shard][local]
        shard_norms = self._norms[shard]
        norms = None if shard_norms is None else shard_norms[local]
        return ids, codes, err, norms, rows_full, local


class SharedShardPackedBase(ShardPackedBase):
    """A :class:`ShardPackedBase` whose arrays live in shared memory.

    The process backend's zero-copy data plane: the parent packs every
    shard's rows / ids / norms into **one**
    :class:`multiprocessing.shared_memory.SharedMemory` segment
    (:meth:`from_packed`), ships only the tiny :meth:`manifest` —
    segment name plus per-array ``(offset, shape, dtype)`` records —
    to each worker, and workers :meth:`attach` as numpy views over the
    same physical pages. No vector bytes are ever pickled or copied
    across the process boundary; staleness is keyed by the same
    ``(version, ntotal)`` pair as the in-process packed cache.

    Lifecycle: the creating process calls :meth:`unlink` (usually via
    the owning backend's ``close()``) exactly once; every process —
    creator and attachers — calls :meth:`close` to drop its mapping.
    The segment persists until the last mapping closes, so the parent
    may safely unlink a stale layout while workers still scan it.
    A ``weakref.finalize`` guard on owner layouts frees the segment
    at garbage collection or interpreter exit even when ``unlink``
    was never called, so a crashed or careless caller cannot leak
    ``/dev/shm`` pages for the life of the machine.
    """

    def __init__(self, *args, shm=None, owner=False, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._shm = shm
        self._owner = owner
        self._spec: dict = {}
        self._finalizer = (
            weakref.finalize(self, _release_owned_segment, shm)
            if owner and shm is not None
            else None
        )

    # -- construction ---------------------------------------------------

    @classmethod
    def from_packed(cls, packed: ShardPackedBase) -> "SharedShardPackedBase":
        """Re-home an existing packed layout into one shared segment."""
        from multiprocessing import shared_memory

        arrays: list[tuple[str, np.ndarray]] = []
        for shard in range(packed.n_shards):
            arrays.append((f"rows{shard}", packed._rows[shard]))
            arrays.append((f"ids{shard}", packed._ids[shard]))
            if packed._norms[shard] is not None:
                arrays.append((f"norms{shard}", packed._norms[shard]))
            if packed._codes[shard] is not None:
                arrays.append((f"codes{shard}", packed._codes[shard]))
                arrays.append((f"code_err{shard}", packed._code_err[shard]))
        arrays.append(("list_start", packed._list_start))
        arrays.append(("list_stop", packed._list_stop))
        if packed._code_lo is not None:
            arrays.append(("code_lo", packed._code_lo))
            arrays.append(("code_scale", packed._code_scale))

        total = sum(arr.nbytes for _, arr in arrays)
        shm = shared_memory.SharedMemory(create=True, size=max(1, total))
        offset = 0
        spec: dict[str, tuple[int, tuple, str]] = {}
        views: dict[str, np.ndarray] = {}
        for key, arr in arrays:
            view = np.ndarray(
                arr.shape, dtype=arr.dtype, buffer=shm.buf, offset=offset
            )
            view[...] = arr
            spec[key] = (offset, tuple(arr.shape), arr.dtype.str)
            views[key] = view
            offset += arr.nbytes

        layout = cls(
            rows=[views[f"rows{s}"] for s in range(packed.n_shards)],
            ids=[views[f"ids{s}"] for s in range(packed.n_shards)],
            norms=[
                views.get(f"norms{s}") for s in range(packed.n_shards)
            ],
            list_start=views["list_start"],
            list_stop=views["list_stop"],
            version=packed.version,
            ntotal=packed.ntotal,
            codes=[
                views.get(f"codes{s}") for s in range(packed.n_shards)
            ],
            code_err=[
                views.get(f"code_err{s}") for s in range(packed.n_shards)
            ],
            code_lo=views.get("code_lo"),
            code_scale=views.get("code_scale"),
            shm=shm,
            owner=True,
        )
        layout._spec = spec
        return layout

    @classmethod
    def build(
        cls,
        index: "IVFFlatIndex",
        plan: PartitionPlan,
        base_slice_norms: np.ndarray | None = None,
        with_codes: bool = False,
    ) -> "SharedShardPackedBase":
        """Pack straight into shared memory (build + re-home)."""
        packed = ShardPackedBase.build(
            index, plan,
            base_slice_norms=base_slice_norms,
            with_codes=with_codes,
        )
        return cls.from_packed(packed)

    # -- cross-process plumbing ----------------------------------------

    def manifest(self) -> dict:
        """Picklable description a worker passes to :meth:`attach`."""
        if self._shm is None:
            raise RuntimeError("layout is not backed by shared memory")
        return {
            "shm_name": self._shm.name,
            "n_shards": self.n_shards,
            "spec": dict(self._spec),
            "version": self.version,
            "ntotal": self.ntotal,
        }

    @classmethod
    def attach(cls, manifest: dict) -> "SharedShardPackedBase":
        """Map an existing segment read-only-by-convention, zero-copy."""
        shm = _attach_shm(manifest["shm_name"])
        spec = manifest["spec"]

        def view(key: str) -> np.ndarray | None:
            if key not in spec:
                return None
            offset, shape, dtype = spec[key]
            return np.ndarray(
                shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=offset
            )

        n_shards = manifest["n_shards"]
        layout = cls(
            rows=[view(f"rows{s}") for s in range(n_shards)],
            ids=[view(f"ids{s}") for s in range(n_shards)],
            norms=[view(f"norms{s}") for s in range(n_shards)],
            list_start=view("list_start"),
            list_stop=view("list_stop"),
            version=manifest["version"],
            ntotal=manifest["ntotal"],
            codes=[view(f"codes{s}") for s in range(n_shards)],
            code_err=[view(f"code_err{s}") for s in range(n_shards)],
            code_lo=view("code_lo"),
            code_scale=view("code_scale"),
            shm=shm,
            owner=False,
        )
        layout._spec = dict(spec)
        return layout

    # -- lifecycle ------------------------------------------------------

    @property
    def shm_name(self) -> str | None:
        return None if self._shm is None else self._shm.name

    def close(self) -> None:
        """Drop this process's mapping (views become invalid)."""
        shm, self._shm = self._shm, None
        self._rows = self._ids = self._norms = []  # release buffer refs
        self._codes = self._code_err = []
        self._list_start = self._list_stop = None
        self._code_lo = self._code_scale = None
        if shm is not None:
            try:
                shm.close()
            except (OSError, BufferError):
                pass

    def unlink(self) -> None:
        """Free the segment (creator only); also closes the mapping."""
        shm = self._shm
        owner, self._owner = self._owner, False
        finalizer, self._finalizer = self._finalizer, None
        if finalizer is not None:
            finalizer.detach()
        self.close()
        if shm is not None and owner:
            try:
                shm.unlink()
            except (FileNotFoundError, OSError):
                pass
