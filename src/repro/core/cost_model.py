"""The fine-grained cost model (paper Section 4.2.1).

For a candidate partition plan ``pi`` and a workload sample ``Q`` the
model estimates:

- per-query computation and communication cost, split into the
  dimension-based and vector-based components of ``C_q(pi)``,
- per-node load ``Load(n, pi)`` (computation seconds),
- the imbalance factor ``I(pi)`` = standard deviation of node loads,
- the overall objective ``C(pi, Q) = sum_q C_q(pi) + alpha * I(pi)``.

Estimates use only lightweight statistics — inverted-list sizes and the
workload's list-probe frequencies — so planning cost is negligible, as
the paper requires.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.messages import (
    partial_result_bytes,
    query_chunk_bytes,
    result_set_bytes,
)
from repro.core.partition import PartitionPlan
from repro.index.ivf import IVFFlatIndex


@dataclass(frozen=True)
class CostParameters:
    """Hardware characteristics the model prices work against.

    Attributes:
        compute_rate: fp32 elements per second per worker.
        bandwidth_bytes_per_s: link bandwidth.
        latency_s: per-message latency.
        alpha: imbalance weight in the overall objective.
        message_overlap: fraction of a transfer that consumes sender
            resources. Non-blocking sends overlap with computation, so
            only their injection overhead counts; blocking sends cost
            their full duration.
    """

    compute_rate: float
    bandwidth_bytes_per_s: float
    latency_s: float
    alpha: float = 4.0
    message_overlap: float = 0.1

    @classmethod
    def from_cluster(cls, cluster: Cluster, alpha: float = 4.0) -> "CostParameters":
        """Derive parameters from a simulated cluster's configuration."""
        from repro.cluster.network import NONBLOCKING_SENDER_SHARE, CommMode

        overlap = (
            1.0
            if cluster.network.mode is CommMode.BLOCKING
            else NONBLOCKING_SENDER_SHARE
        )
        return cls(
            compute_rate=cluster.workers[0].compute_rate,
            bandwidth_bytes_per_s=cluster.network.bandwidth_bytes_per_s,
            latency_s=cluster.network.latency_s,
            alpha=alpha,
            message_overlap=overlap,
        )


@dataclass(frozen=True)
class WorkloadProfile:
    """Probe statistics of a (sampled) workload.

    Attributes:
        n_queries: queries in the sample.
        nprobe: probes per query used when profiling.
        probes: ``(n_queries, nprobe)`` probed list ids.
        list_frequency: expected probes per inverted list (counts).
        queries: the sampled query vectors (kept for pruning pilots).
    """

    n_queries: int
    nprobe: int
    probes: np.ndarray
    list_frequency: np.ndarray
    queries: np.ndarray

    @classmethod
    def measure(
        cls, index: IVFFlatIndex, queries: np.ndarray, nprobe: int
    ) -> "WorkloadProfile":
        """Profile a workload sample against a trained index."""
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        probes = index.probe(queries, nprobe)
        freq = np.bincount(probes.ravel(), minlength=index.nlist).astype(
            np.float64
        )
        return cls(
            n_queries=int(probes.shape[0]),
            nprobe=nprobe,
            probes=probes,
            list_frequency=freq,
            queries=queries,
        )


@dataclass(frozen=True)
class PlanCost:
    """Scored cost of one plan under one workload profile.

    All figures are simulated seconds. ``total`` is the paper's overall
    objective ``C(pi, Q)``.
    """

    computation_seconds: float
    communication_seconds: float
    imbalance_seconds: float
    node_loads: np.ndarray
    alpha: float

    @property
    def total(self) -> float:
        return (
            self.computation_seconds
            + self.communication_seconds
            + self.alpha * self.imbalance_seconds
        )


def estimate_survival(
    index: IVFFlatIndex,
    queries: np.ndarray,
    nprobe: int,
    n_blocks: int,
    k: int = 10,
    prewarm: int = 64,
    max_queries: int = 8,
    max_candidates: int = 4096,
) -> np.ndarray:
    """Pilot measurement of per-position pruning survival.

    Runs a handful of sample queries through a real dimension pipeline
    (canonical slice order, lossless pruning against a prewarmed top-K
    heap) and returns, for each pipeline position ``p``, the average
    fraction of candidates still alive when position ``p`` starts
    (``survival[0]`` is always 1.0). This is how the planner prices the
    compute savings of dimension-including plans without a closed-form
    pruning model — the "lightweight metrics" of Section 4.2.

    L2 metric only (the library's pruning bound for inner product is
    looser; the planner conservatively skips the pilot there).
    """
    from repro.core.heap import TopKHeap
    from repro.core.pruning import ShardScan
    from repro.distance.metrics import squared_l2
    from repro.distance.partial import DimensionSlices

    if n_blocks <= 1:
        return np.ones(max(n_blocks, 1), dtype=np.float64)
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
    queries = queries[:max_queries]
    slices = DimensionSlices.even(index.dim, n_blocks)
    probes = index.probe(queries, nprobe)
    survival = np.zeros(n_blocks, dtype=np.float64)
    weight = 0.0
    for i in range(queries.shape[0]):
        candidates = index.candidates(probes[i])[:max_candidates]
        if candidates.size == 0:
            continue
        heap = TopKHeap(k)
        warm = candidates[: min(prewarm, candidates.size)]
        warm_scores = squared_l2(index.base[warm], queries[i])
        for cid, score in zip(warm, np.atleast_1d(warm_scores)):
            heap.push(float(score), int(cid))
        scan = ShardScan(
            base=index.base,
            candidate_ids=candidates,
            query=queries[i],
            slices=slices,
        )
        for position in range(n_blocks):
            survival[position] += scan.n_alive / scan.n_candidates
            if scan.n_alive == 0:
                continue
            scan.process_slice(position)
            scan.prune(heap.threshold)
        weight += 1.0
    if weight == 0.0:
        return np.ones(n_blocks, dtype=np.float64)
    return survival / weight


def node_loads(
    plan: PartitionPlan,
    index: IVFFlatIndex,
    profile: WorkloadProfile,
    params: CostParameters,
    survival: np.ndarray | None = None,
) -> np.ndarray:
    """``Load(n, pi)``: expected computation seconds per machine.

    A probed list ``l`` of size ``s_l`` generates ``s_l * width_d``
    elements of scan work in each of its dimension blocks ``d``; the
    machine hosting grid block ``(shard(l), d)`` pays for it. When a
    pruning ``survival`` profile is given (dimension-including plans),
    every machine's load is scaled by the mean survival fraction —
    rotation-staggered scheduling exposes each machine to every
    pipeline position equally.
    """
    sizes = index.list_sizes().astype(np.float64)
    widths = plan.slices.widths()
    loads = np.zeros(plan.n_machines, dtype=np.float64)
    # Expected scanned rows per shard = sum over its lists of freq*size.
    shard_rows = np.zeros(plan.n_vector_shards, dtype=np.float64)
    np.add.at(shard_rows, plan.shard_of_list, profile.list_frequency * sizes)
    for shard in range(plan.n_vector_shards):
        for block in range(plan.n_dim_blocks):
            machine = plan.machine_of(shard, block)
            loads[machine] += shard_rows[shard] * widths[block]
    if survival is not None and plan.n_dim_blocks > 1:
        loads *= float(np.mean(survival))
    return loads / params.compute_rate


def imbalance_factor(loads: np.ndarray) -> float:
    """``I(pi)``: standard deviation of per-node loads."""
    loads = np.asarray(loads, dtype=np.float64)
    if loads.size == 0:
        raise ValueError("loads must be non-empty")
    return float(np.std(loads))


def communication_seconds(
    plan: PartitionPlan,
    index: IVFFlatIndex,
    profile: WorkloadProfile,
    params: CostParameters,
    k: int = 10,
    survival: np.ndarray | None = None,
) -> float:
    """Expected total communication time for the profiled workload.

    Per touched (query, shard) pair the plan exchanges:

    - ``B_dim`` query-chunk messages of ``dim / B_dim`` coordinates,
    - ``B_dim - 1`` inter-stage partial-result messages, sized at the
      shard's candidate count scaled by the pruning ``survival``
      profile when one is available (pruned candidates leave the
      pipeline and are never forwarded), and
    - one final result message back to the client.

    Note the payload bytes match the paper's analysis: chunk bytes are
    invariant in ``B_dim``, but message *count* grows with it, so the
    latency term makes dimension partitioning costlier on the wire.
    """
    sizes = index.list_sizes()
    widths = plan.slices.widths()
    bw = params.bandwidth_bytes_per_s
    lat = params.latency_s
    total = 0.0
    for row in profile.probes:
        shard_candidates: dict[int, int] = {}
        for list_id in row:
            shard = int(plan.shard_of_list[list_id])
            shard_candidates[shard] = shard_candidates.get(shard, 0) + int(
                sizes[list_id]
            )
        for n_candidates in shard_candidates.values():
            for width in widths:
                total += lat + query_chunk_bytes(width) / bw
            for stage in range(plan.n_dim_blocks - 1):
                forwarded = n_candidates
                if survival is not None and stage + 1 < len(survival):
                    forwarded = int(n_candidates * survival[stage + 1])
                total += lat + partial_result_bytes(forwarded) / bw
            total += lat + result_set_bytes(k) / bw
    return total * params.message_overlap


def plan_cost(
    plan: PartitionPlan,
    index: IVFFlatIndex,
    profile: WorkloadProfile,
    params: CostParameters,
    k: int = 10,
    survival: np.ndarray | None = None,
) -> PlanCost:
    """Evaluate the overall objective ``C(pi, Q)`` for one plan."""
    loads = node_loads(plan, index, profile, params, survival=survival)
    return PlanCost(
        computation_seconds=float(loads.sum()),
        communication_seconds=communication_seconds(
            plan, index, profile, params, k=k, survival=survival
        ),
        imbalance_seconds=imbalance_factor(loads),
        node_loads=loads,
        alpha=params.alpha,
    )
