"""Online workload-drift monitoring and automatic re-planning.

HARMONY "adapts its partitioning strategies to dynamic query
workloads" (paper Section 4.1). The deployment's plan is chosen from a
workload sample at build time; when live traffic drifts — a region of
the embedding space heats up — the old plan can become imbalanced.
:class:`DriftMonitor` watches served queries, estimates the current
plan's load imbalance from probe statistics, and triggers
``HarmonyDB.replan`` when a rebalance would help:

    monitor = DriftMonitor(db, window=256, imbalance_threshold=0.25)
    for batch in stream:
        results, report = db.search(batch, k=10)
        monitor.observe(batch)
        if monitor.maybe_replan():
            log.info("re-planned: %s", db.plan.describe())
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.cost_model import (
    CostParameters,
    WorkloadProfile,
    node_loads,
)
from repro.core.database import HarmonyDB


@dataclass(frozen=True)
class DriftStatus:
    """Snapshot of the monitor's view of the live workload.

    Attributes:
        n_observed: queries currently in the window.
        imbalance: coefficient of variation of the active plan's
            estimated per-node loads under the windowed workload.
        drifted: whether the imbalance exceeds the threshold.
    """

    n_observed: int
    imbalance: float
    drifted: bool


class DriftMonitor:
    """Watches served queries and re-plans when load drifts.

    Args:
        db: the deployment to watch (must be built).
        window: recent queries kept for drift estimation.
        imbalance_threshold: coefficient-of-variation of estimated
            per-node loads above which the workload counts as drifted.
        min_observations: don't judge drift before this many queries.
    """

    def __init__(
        self,
        db: HarmonyDB,
        window: int = 256,
        imbalance_threshold: float = 0.25,
        min_observations: int = 64,
    ) -> None:
        if not db.is_built:
            raise RuntimeError("monitor requires a built deployment")
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if imbalance_threshold < 0:
            raise ValueError("imbalance_threshold must be non-negative")
        if not 0 < min_observations <= window:
            raise ValueError(
                "need 0 < min_observations <= window, got "
                f"{min_observations} / {window}"
            )
        self.db = db
        self.window = window
        self.imbalance_threshold = imbalance_threshold
        self.min_observations = min_observations
        # Preallocated circular buffer: observe() writes rows in place
        # instead of re-stacking the whole window on every call.
        self._buffer = np.zeros((window, db.index.dim), dtype=np.float32)
        self._pos = 0
        self._count = 0
        self.replan_count = 0

    @property
    def _recent(self) -> np.ndarray:
        """Windowed queries, oldest first (chronological view)."""
        if self._count < self.window:
            return self._buffer[: self._count]
        return np.concatenate(
            (self._buffer[self._pos :], self._buffer[: self._pos])
        )

    def observe(self, queries: np.ndarray) -> None:
        """Record served queries into the sliding window.

        Cost is O(rows added), independent of the window size: rows
        land in a preallocated ring buffer rather than re-allocating
        the whole window per call.
        """
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        if queries.shape[1] != self._buffer.shape[1]:
            raise ValueError(
                f"expected dim {self._buffer.shape[1]} queries, got "
                f"{queries.shape[1]}"
            )
        n = queries.shape[0]
        if n >= self.window:
            # Only the newest `window` rows can survive.
            self._buffer[:] = queries[n - self.window :]
            self._pos = 0
            self._count = self.window
            return
        first = min(n, self.window - self._pos)
        self._buffer[self._pos : self._pos + first] = queries[:first]
        if first < n:
            self._buffer[: n - first] = queries[first:]
        self._pos = (self._pos + n) % self.window
        self._count = min(self._count + n, self.window)

    def status(self) -> DriftStatus:
        """Estimate the active plan's imbalance on the windowed traffic."""
        n = self._recent.shape[0]
        if n < self.min_observations:
            return DriftStatus(n_observed=n, imbalance=0.0, drifted=False)
        profile = WorkloadProfile.measure(
            self.db.index, self._recent, self.db.config.nprobe
        )
        params = CostParameters.from_cluster(
            self.db.cluster, alpha=self.db.config.alpha
        )
        loads = node_loads(self.db.plan, self.db.index, profile, params)
        mean = float(loads.mean())
        imbalance = float(loads.std() / mean) if mean > 0 else 0.0
        return DriftStatus(
            n_observed=n,
            imbalance=imbalance,
            drifted=imbalance > self.imbalance_threshold,
        )

    def maybe_replan(self) -> bool:
        """Re-plan on drift; returns True when a re-plan happened.

        The window is kept (not cleared) so a re-plan that failed to
        balance the load — e.g. a single giant hot list that no
        partitioning can split at vector granularity — will keep
        pushing toward dimension-including grids on later checks.
        """
        current = self.status()
        if not current.drifted:
            return False
        self.db.replan(self._recent)
        self.replan_count += 1
        return True
