"""HARMONY configuration.

Mirrors the user-facing parameters of the paper's implementation
(Section 5): ``-NMachine``, ``-Pruning_Configuration``,
``-Indexing_Parameters`` (nlist / nprobe / dim), ``-alpha`` and
``-Mode``, plus the ablation switches used in Section 6.3.2.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.distance.metrics import Metric, resolve_metric


#: Admission-control load-shedding policies accepted by
#: ``HarmonyConfig.serve_shed_policy`` (hyphens normalize to
#: underscores, so the paper-issue spelling ``degrade-nprobe`` works).
SHED_POLICIES = ("reject", "shed_oldest", "degrade_nprobe")

#: ``HarmonyConfig.serve_deadline_policy``: what the serving layer does
#: with a request whose end-to-end deadline expires while its batch is
#: still executing (hyphens normalize to underscores).
DEADLINE_POLICIES = ("block", "partial", "timeout")


class Mode(str, enum.Enum):
    """Partitioning mode (the paper's ``-Mode`` parameter).

    ``HARMONY`` lets the cost model pick the hybrid grid;
    ``VECTOR`` forces pure vector-based partitioning (Harmony-vector);
    ``DIMENSION`` forces pure dimension-based partitioning
    (Harmony-dimension).
    """

    HARMONY = "harmony"
    VECTOR = "harmony-vector"
    DIMENSION = "harmony-dimension"


def resolve_mode(mode: "Mode | str") -> Mode:
    """Coerce a mode name (``"harmony-vector"`` etc.) into :class:`Mode`."""
    if isinstance(mode, Mode):
        return mode
    try:
        return Mode(str(mode).lower())
    except ValueError as exc:
        supported = ", ".join(m.value for m in Mode)
        raise ValueError(
            f"unknown mode {mode!r}; supported modes: {supported}"
        ) from exc


@dataclass
class HarmonyConfig:
    """All tunables of a HARMONY deployment.

    Attributes:
        n_machines: worker nodes in the cluster (``-NMachine``).
        nlist: IVF cluster count.
        nprobe: probed clusters per query.
        metric: similarity metric.
        mode: partition-mode selection (see :class:`Mode`).
        alpha: weight of the imbalance term in the overall cost
            function ``C(pi, Q) = sum C_q + alpha * I(pi)``.
        enable_pruning: dimension-level early-stop pruning (Section 4.3).
        enable_pipeline: pipelined inter-slice execution; when off,
            partial results synchronize through the client with barrier
            semantics (the paper's non-pipelined strawman).
        enable_load_balance: load-aware list-to-shard assignment plus
            adaptive dimension-order scheduling.
        prewarm_size: candidates scored on the client to seed the top-K
            heap before distributed scanning (Algorithm 1, PrewarmHeap).
        forced_grid: pin the partition grid to ``(B_vec, B_dim)``
            instead of letting the cost model choose (used by ablation
            experiments to isolate one optimization at a time).
        replicas: copies of every grid block (1 = none). Replication is
            the classic alternative remedy for hot shards — it buys
            read scaling at ``replicas``x the per-node index memory,
            the trade-off ``bench_replication_tradeoff.py`` quantifies
            against Harmony's memory-free hybrid grids.
        plan_sample: query-sample size fed to the cost model.
        kmeans_iterations: training iteration cap.
        seed: RNG seed for clustering and sampling.
        backend: execution backend for ``HarmonyDB.search``: ``"sim"``
            (discrete-event simulated cluster, the default), ``"thread"``
            (real host threads, wall-clock timing), ``"process"``
            (persistent worker processes over shared-memory shard
            layouts — multi-core without the GIL), or ``"serial"``
            (plain loop, the reference oracle). All backends return
            byte-identical results; only the timing side differs.
        n_threads: worker threads for the ``"thread"`` backend
            (None = executor default).
        n_workers: worker processes for the ``"process"`` backend
            (None = one per CPU core).
        batch_queries: on the host backends, fuse multi-query batches
            into shard-major matrix-matrix scans (bitwise identical to
            the per-query loop, just faster). False forces one scan
            per query; the simulated backend always steps per query.
        degraded_mode: serve partial results instead of raising when a
            grid block has no live replica — skipped work is reported
            as a per-query coverage fraction and recall-vs-healthy
            delta in ``ExecutionReport.degraded``. Off by default:
            losing data silently is the wrong default for a database.
        retry_timeout: simulated seconds before a shard request to a
            crashed worker is retried (base of the exponential
            backoff: attempt ``i`` waits ``retry_timeout * 2**i``).
        max_retries: retry attempts per shard request after the first;
            exhausting them abandons the scan (``degraded_mode``) or
            raises.
        hedge_latency_threshold: projected per-scan latency (seconds)
            above which a duplicate request is hedged to a second live
            replica, taking whichever finishes first. ``None`` (the
            default) disables hedging.
        scan_timeout: host-backend straggler watchdog in wall-clock
            seconds (thread/process backends). ``None`` (default)
            disables it; when set, a shard task exceeding the timeout
            is speculatively re-issued with exponential escalation —
            the host mirror of the sim pipeline's retry/hedge path.
            Results stay byte-identical (hedged duplicates are
            deduplicated by task).
        scan_retries: re-issues per straggling host task before the
            supervisor gives up; with ``degraded_mode`` the task is
            then abandoned and charged to per-query coverage,
            otherwise the supervisor keeps waiting.
        scan_precision: candidate-generation representation. ``"fp32"``
            (the default) scans full-precision rows; ``"sq8"`` scans
            packed uint8 codes with error-padded lossless pruning
            bounds and re-ranks survivors against float32, returning
            byte-identical results for a quarter of the scan
            bandwidth. Honoured by every backend.
        delta_compact_ratio: write-path compaction trigger. Mutations
            are absorbed as per-shard delta segments and tombstone
            bits on the immutable packed base; once the pending rows
            (deltas + tombstones) exceed this fraction of the base
            generation, the next search merges them into a fresh
            generation. Results are byte-identical either way.
        auto_compact: disable to never compact automatically; deltas
            then accumulate until :meth:`HarmonyDB.compact` is called.
        memory_bandwidth: simulated per-node memory bandwidth cap in
            bytes/second shared by that node's concurrent scans
            (``"sim"`` backend only). ``None`` (the default) models
            compute-bound nodes, leaving existing timings untouched;
            a finite cap reproduces the bandwidth-contention "more
            cores hurts" regime that motivates the sq8 path.
        serve_max_batch: largest micro-batch the serving front end
            (:class:`repro.serve.HarmonyServer`) coalesces before
            flushing; reaching it flushes immediately.
        serve_slo_ms: end-to-end latency SLO target in milliseconds.
            The server derives its batch flush deadline from it:
            ``flush_deadline = serve_slo_ms * serve_deadline_fraction``
            — a request never waits in the coalescing buffer longer
            than that before its batch is dispatched.
        serve_deadline_fraction: fraction of the SLO budget spent
            waiting for batch-mates, in ``(0, 1]``.
        serve_queue_depth: admitted-request bound. When the pending
            queue reaches it, the shed policy applies — queueing
            theory's alternative is unbounded queue growth and
            unbounded p99.
        serve_shed_policy: what to do with load beyond
            ``serve_queue_depth``: ``"reject"`` refuses the new
            request, ``"shed_oldest"`` drops the stalest queued
            request in favor of the new one, ``"degrade_nprobe"``
            admits up to ``2 * serve_queue_depth`` but serves
            overload-admitted requests at half the requested nprobe
            (flagged on the response, like degraded mode), shedding
            the oldest beyond the hard cap.
        enable_cache: attach a :class:`repro.cache.ResultCache` to the
            deployment. Exact hits replay finished answers
            byte-identically and skip routing + scanning entirely;
            entries are invalidated whenever the index version or
            packed-layout generation moves, and degraded /
            partial-coverage answers are never cached. Off by default —
            caching is a serving-workload decision.
        cache_size: result-cache capacity in entries (segmented LRU:
            repeat-hit entries are protected from one-hit-wonder
            floods).
        cache_semantic_epsilon: opt-in semantic hit radius (L2 over
            query embeddings). ``0.0`` (default) serves only exact byte
            matches — results stay byte-identical to an uncached run;
            a positive ε also serves a cached *neighbor's* answer when
            a new query falls inside its ε-ball, trading bounded recall
            loss (measured and reported per hit, never silent) for hit
            rate.
        routing_cache_size: capacity of the kernel's planner-level
            :class:`~repro.core.routing.RoutingCache` (LRU entries per
            internal map); hot probe rows skip shard routing and
            candidate-list splitting.
        serve_deadline_policy: what the server does when executing a
            batch would blow a request's end-to-end deadline
            (``t_submit + serve_slo_ms``): ``"block"`` (default)
            waits for the batch regardless — the pre-deadline
            behavior; ``"partial"`` resolves expired waiters with an
            empty, ``timed_out``-flagged degraded response while the
            batch keeps running for the rest; ``"timeout"`` fails
            expired waiters with
            :class:`repro.serve.RequestTimeout`. Either way the
            flusher thread itself never blocks past the deadline and
            a batch-execution crash fails only that batch's futures.
    """

    n_machines: int = 4
    nlist: int = 64
    nprobe: int = 8
    metric: Metric = Metric.L2
    mode: Mode = Mode.HARMONY
    alpha: float = 4.0
    enable_pruning: bool = True
    enable_pipeline: bool = True
    enable_load_balance: bool = True
    prewarm_size: int = 32
    plan_sample: int = 128
    kmeans_iterations: int = 20
    seed: int = 0
    forced_grid: "tuple[int, int] | None" = None
    replicas: int = 1
    backend: str = "sim"
    n_threads: "int | None" = None
    n_workers: "int | None" = None
    batch_queries: bool = True
    degraded_mode: bool = False
    retry_timeout: float = 2e-4
    max_retries: int = 3
    hedge_latency_threshold: "float | None" = None
    scan_timeout: "float | None" = None
    scan_retries: int = 3
    scan_precision: str = "fp32"
    delta_compact_ratio: float = 0.25
    auto_compact: bool = True
    memory_bandwidth: "float | None" = None
    serve_max_batch: int = 32
    serve_slo_ms: float = 20.0
    serve_deadline_fraction: float = 0.25
    serve_queue_depth: int = 256
    serve_shed_policy: str = "reject"
    serve_deadline_policy: str = "block"
    enable_cache: bool = False
    cache_size: int = 1024
    cache_semantic_epsilon: float = 0.0
    routing_cache_size: int = 4096

    def __post_init__(self) -> None:
        self.metric = resolve_metric(self.metric)
        self.mode = resolve_mode(self.mode)
        if self.n_machines <= 0:
            raise ValueError(f"n_machines must be positive, got {self.n_machines}")
        if self.nlist <= 0:
            raise ValueError(f"nlist must be positive, got {self.nlist}")
        if self.nprobe <= 0:
            raise ValueError(f"nprobe must be positive, got {self.nprobe}")
        if self.alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {self.alpha}")
        if self.prewarm_size < 0:
            raise ValueError(
                f"prewarm_size must be non-negative, got {self.prewarm_size}"
            )
        if self.plan_sample <= 0:
            raise ValueError(f"plan_sample must be positive, got {self.plan_sample}")
        if self.forced_grid is not None:
            b_vec, b_dim = self.forced_grid
            if b_vec <= 0 or b_dim <= 0:
                raise ValueError(
                    f"forced_grid entries must be positive, got {self.forced_grid}"
                )
        if not 1 <= self.replicas <= self.n_machines:
            raise ValueError(
                f"replicas must be in [1, n_machines], got {self.replicas}"
            )
        self.backend = str(self.backend).lower()
        if self.backend not in ("sim", "thread", "serial", "process"):
            raise ValueError(
                f"unknown backend {self.backend!r}; supported backends: "
                f"process, serial, sim, thread"
            )
        if self.n_threads is not None and self.n_threads <= 0:
            raise ValueError(
                f"n_threads must be positive, got {self.n_threads}"
            )
        if self.n_workers is not None and self.n_workers <= 0:
            raise ValueError(
                f"n_workers must be positive, got {self.n_workers}"
            )
        self.batch_queries = bool(self.batch_queries)
        self.degraded_mode = bool(self.degraded_mode)
        if self.retry_timeout <= 0:
            raise ValueError(
                f"retry_timeout must be positive, got {self.retry_timeout}"
            )
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be non-negative, got {self.max_retries}"
            )
        if (
            self.hedge_latency_threshold is not None
            and self.hedge_latency_threshold <= 0
        ):
            raise ValueError(
                f"hedge_latency_threshold must be positive or None, got "
                f"{self.hedge_latency_threshold}"
            )
        if self.scan_timeout is not None and self.scan_timeout <= 0:
            raise ValueError(
                f"scan_timeout must be positive or None, got "
                f"{self.scan_timeout}"
            )
        if self.scan_retries < 0:
            raise ValueError(
                f"scan_retries must be non-negative, got {self.scan_retries}"
            )
        self.scan_precision = str(self.scan_precision).lower()
        if self.scan_precision not in ("fp32", "sq8"):
            raise ValueError(
                f"unknown scan_precision {self.scan_precision!r}; "
                f"supported precisions: fp32, sq8"
            )
        if self.delta_compact_ratio <= 0:
            raise ValueError(
                f"delta_compact_ratio must be positive, got "
                f"{self.delta_compact_ratio}"
            )
        self.auto_compact = bool(self.auto_compact)
        if self.memory_bandwidth is not None and self.memory_bandwidth <= 0:
            raise ValueError(
                f"memory_bandwidth must be positive or None, got "
                f"{self.memory_bandwidth}"
            )
        if self.serve_max_batch <= 0:
            raise ValueError(
                f"serve_max_batch must be positive, got {self.serve_max_batch}"
            )
        if self.serve_slo_ms <= 0:
            raise ValueError(
                f"serve_slo_ms must be positive, got {self.serve_slo_ms}"
            )
        if not 0.0 < self.serve_deadline_fraction <= 1.0:
            raise ValueError(
                f"serve_deadline_fraction must be in (0, 1], got "
                f"{self.serve_deadline_fraction}"
            )
        if self.serve_queue_depth <= 0:
            raise ValueError(
                f"serve_queue_depth must be positive, got "
                f"{self.serve_queue_depth}"
            )
        self.serve_shed_policy = (
            str(self.serve_shed_policy).lower().replace("-", "_")
        )
        if self.serve_shed_policy not in SHED_POLICIES:
            raise ValueError(
                f"unknown serve_shed_policy {self.serve_shed_policy!r}; "
                f"supported policies: {', '.join(sorted(SHED_POLICIES))}"
            )
        self.serve_deadline_policy = (
            str(self.serve_deadline_policy).lower().replace("-", "_")
        )
        if self.serve_deadline_policy not in DEADLINE_POLICIES:
            raise ValueError(
                f"unknown serve_deadline_policy "
                f"{self.serve_deadline_policy!r}; supported policies: "
                f"{', '.join(sorted(DEADLINE_POLICIES))}"
            )
        self.enable_cache = bool(self.enable_cache)
        if self.cache_size <= 0:
            raise ValueError(
                f"cache_size must be positive, got {self.cache_size}"
            )
        if self.cache_semantic_epsilon < 0:
            raise ValueError(
                f"cache_semantic_epsilon must be non-negative, got "
                f"{self.cache_semantic_epsilon}"
            )
        if self.routing_cache_size <= 0:
            raise ValueError(
                f"routing_cache_size must be positive, got "
                f"{self.routing_cache_size}"
            )

    def replace(self, **changes: object) -> "HarmonyConfig":
        """Copy of this config with the given fields replaced."""
        from dataclasses import replace as dc_replace

        return dc_replace(self, **changes)  # type: ignore[arg-type]
