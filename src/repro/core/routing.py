"""Query load distribution and dimension-order scheduling.

Implements the routing half of the paper's Figure 4 — mapping a query's
probed inverted lists to the vector shards / grid blocks that must be
visited — plus the execution-order policies of Section 4.3:

- *staggering*: consecutive queries start their dimension pipeline on
  different machines (Figure 5(b)'s ``Q1 -> D1, Q2 -> D2, Q3 -> D3``)
  so no two in-flight queries contend for the same slice stage;
- *adaptive ordering*: an overloaded machine's slice is deferred to the
  end of the pipeline, where accumulated pruning has already discarded
  most candidates ("if M1 becomes overloaded, subsequent queries
  process D1 last").
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.core.partition import PartitionPlan


def touched_shards(plan: PartitionPlan, probe_row: np.ndarray) -> np.ndarray:
    """Vector shards a query must visit, ascending and deduplicated.

    Args:
        plan: the active partition plan.
        probe_row: the query's probed inverted-list ids.
    """
    return np.unique(plan.shard_of_list[np.asarray(probe_row, dtype=np.int64)])


@dataclass(frozen=True)
class CachedRoute:
    """One memoized routing decision for an exact probe order.

    Carries everything the scan kernel derives from the planner for a
    single query: the touched-shard set *and* the per-shard candidate
    list splits, in the query's exact probe order. Keying on the probe
    order (not the sorted cell) is what keeps cached routes
    byte-identical — candidate lists are scanned in probe order, so two
    permutations of the same cell are legitimately different routes.
    """

    shards: np.ndarray
    lists_by_shard: dict = field(default_factory=dict)

    def lists_for(self, shard: int) -> np.ndarray:
        """The query's probed lists living in ``shard``, probe-ordered."""
        return self.lists_by_shard[int(shard)]


class RoutingCache:
    """Memoized planner-level routing with bounded LRU eviction.

    Skewed serving traffic repeats itself: hot queries land in the same
    cluster-id grid cell (the same set of probed inverted lists) over
    and over, and the planner-derived shard probe set for a cell never
    changes while the index generation is stable. Two maps are kept:

    - *cells* (:meth:`shards_for`): keyed on the **sorted,
      deduplicated** probed-list ids — the grid cell — so probe order
      (which only affects scan scheduling, never the shard set) cannot
      fragment entries.
    - *routes* (:meth:`route_for`): keyed on the **exact probe order**,
      memoizing the full per-shard candidate-list split the kernel
      needs. This is the hot-path cache that lets repeated queries skip
      the planner entirely while staying byte-identical.

    Entries are validated against ``IVFFlatIndex.version``: any add or
    effective delete moves the version and atomically drops the whole
    cache, the same staleness protocol the packed layouts use. Both
    maps are bounded LRUs (capacity ``max_entries`` each, configurable
    via ``HarmonyConfig(routing_cache_size=...)``): a lookup refreshes
    the entry's recency, and inserts past capacity evict the least
    recently used entry — a hot key survives any cold-key flood. Hit /
    miss / eviction counts are kept on the instance and surfaced
    through ``ExecutionReport.routing_cache_*`` and the
    ``harmony_routing_cache_{hits,misses,evictions}_total`` metric
    families.

    Thread safety: all methods take the internal lock, so concurrent
    searches through one kernel share the cache without racing. The
    returned arrays are shared — callers must treat them as read-only
    (every current caller only iterates).
    """

    def __init__(self, max_entries: int = 4096) -> None:
        if max_entries <= 0:
            raise ValueError(
                f"max_entries must be positive, got {max_entries}"
            )
        self.max_entries = int(max_entries)
        self._entries: OrderedDict[tuple, np.ndarray] = OrderedDict()
        self._routes: OrderedDict[tuple, CachedRoute] = OrderedDict()
        self._version: int | None = None
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries) + len(self._routes)

    def _check_version(self, version: int) -> None:
        """Drop every entry when the index generation moves (locked)."""
        if self._version != version:
            self._entries.clear()
            self._routes.clear()
            self._version = version

    def _insert(self, entries: OrderedDict, key, value) -> None:
        """LRU insert with eviction accounting (locked)."""
        if len(entries) >= self.max_entries:
            entries.popitem(last=False)
            self.evictions += 1
        entries[key] = value

    def shards_for(
        self, plan: PartitionPlan, probe_row: np.ndarray, version: int
    ) -> np.ndarray:
        """Cached :func:`touched_shards`, invalidated on version moves."""
        key = tuple(sorted({int(x) for x in np.asarray(probe_row).ravel()}))
        with self._lock:
            self._check_version(version)
            cached = self._entries.get(key)
            if cached is not None:
                self.hits += 1
                self._entries.move_to_end(key)
                return cached
            self.misses += 1
        shards = touched_shards(plan, probe_row)
        shards.setflags(write=False)
        with self._lock:
            if self._version == version and key not in self._entries:
                self._insert(self._entries, key, shards)
        return shards

    def route_for(
        self, plan: PartitionPlan, probe_row: np.ndarray, version: int
    ) -> CachedRoute:
        """Cached full routing decision for one exact probe order.

        Memoizes both the touched-shard set and the per-shard candidate
        lists (:func:`shard_candidate_lists`) so a hot query skips the
        planner entirely. Keyed on the exact probe order, which the
        candidate lists preserve — cached routes are byte-identical to
        freshly planned ones by construction.
        """
        probe_row = np.asarray(probe_row, dtype=np.int64)
        key = tuple(int(x) for x in probe_row.ravel())
        with self._lock:
            self._check_version(version)
            cached = self._routes.get(key)
            if cached is not None:
                self.hits += 1
                self._routes.move_to_end(key)
                return cached
            self.misses += 1
        shards = touched_shards(plan, probe_row)
        shards.setflags(write=False)
        lists_by_shard = {}
        for shard in shards:
            lists_here = shard_candidate_lists(plan, probe_row, shard)
            lists_here.setflags(write=False)
            lists_by_shard[int(shard)] = lists_here
        route = CachedRoute(shards=shards, lists_by_shard=lists_by_shard)
        with self._lock:
            if self._version == version and key not in self._routes:
                self._insert(self._routes, key, route)
        return route

    def counters(self) -> "tuple[int, int]":
        """Consistent ``(hits, misses)`` snapshot."""
        with self._lock:
            return self.hits, self.misses

    def stats(self) -> dict:
        """Consistent counter + occupancy snapshot."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "entries": len(self._entries) + len(self._routes),
            }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._routes.clear()
            self._version = None


def shard_candidate_lists(
    plan: PartitionPlan, probe_row: np.ndarray, shard: int
) -> np.ndarray:
    """The query's probed lists that live in ``shard``."""
    probe_row = np.asarray(probe_row, dtype=np.int64)
    return probe_row[plan.shard_of_list[probe_row] == shard]


def staggered_order(
    n_blocks: int, query_index: int, shard: int
) -> np.ndarray:
    """Rotation-staggered slice order for one (query, shard) pipeline.

    Query ``i`` on shard ``v`` starts at slice ``(i + v) mod B`` and
    wraps around, so simultaneous queries occupy different stages.
    """
    if n_blocks <= 0:
        raise ValueError(f"n_blocks must be positive, got {n_blocks}")
    offset = (query_index + shard) % n_blocks
    return (np.arange(n_blocks, dtype=np.int64) + offset) % n_blocks


def adaptive_order(
    plan: PartitionPlan, shard: int, machine_loads: np.ndarray
) -> np.ndarray:
    """Load-aware slice order: least-loaded machines first.

    Machines are ranked by their cumulative computation load; the
    busiest machine's slice runs last, when pruning has shrunk the
    candidate set the most (early pipeline positions process the full
    candidate set, late positions only the survivors). Ties fall back
    to slice id for determinism.
    """
    machines = plan.placement[shard]
    loads = np.asarray(machine_loads, dtype=np.float64)[machines]
    return np.lexsort((np.arange(plan.n_dim_blocks), loads)).astype(np.int64)


def slice_order(
    plan: PartitionPlan,
    shard: int,
    query_index: int,
    machine_loads: np.ndarray,
    load_balance: bool,
    pipeline: bool,
) -> np.ndarray:
    """Pick the dimension-slice execution order for one (query, shard).

    Load-aware adaptive ordering dominates when enabled; otherwise the
    pipelined engine staggers starting slices across queries, and the
    fully naive engine always runs slices in canonical order.
    """
    if plan.n_dim_blocks == 1:
        return np.zeros(1, dtype=np.int64)
    if load_balance:
        return adaptive_order(plan, shard, machine_loads)
    if pipeline:
        return staggered_order(plan.n_dim_blocks, query_index, shard)
    return np.arange(plan.n_dim_blocks, dtype=np.int64)
