"""Bounded top-K heap with a pruning threshold.

The max-heap of Algorithm 1: it retains the K best (smallest-score)
candidates seen so far, and its worst retained score is the pruning
threshold ``tau``. Ties are broken by candidate id so every engine in
the library produces byte-identical result sets.
"""

from __future__ import annotations

import heapq
import math

import numpy as np


class TopKHeap:
    """Keeps the ``k`` lexicographically smallest ``(score, id)`` pairs.

    Scores follow the library convention: smaller is better (squared L2,
    or negated similarity). ``threshold`` is ``+inf`` until the heap is
    full, after which it equals the worst retained score — the value
    partial distances are compared against for early-stop pruning.
    """

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.k = k
        # heapq is a min-heap; store (-score, -id) so the root is the
        # lexicographically largest retained (score, id) pair.
        self._heap: list[tuple[float, int]] = []

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def is_full(self) -> bool:
        return len(self._heap) >= self.k

    @property
    def threshold(self) -> float:
        """Current pruning threshold ``tau`` (``+inf`` until full)."""
        if not self.is_full:
            return math.inf
        return -self._heap[0][0]

    def push(self, score: float, candidate_id: int) -> bool:
        """Offer a candidate; returns True if it was retained.

        A candidate displaces the current worst entry when its
        ``(score, id)`` pair is lexicographically smaller.
        """
        entry = (-float(score), -int(candidate_id))
        if not self.is_full:
            heapq.heappush(self._heap, entry)
            return True
        if entry > self._heap[0]:
            heapq.heapreplace(self._heap, entry)
            return True
        return False

    def push_many(self, scores: np.ndarray, ids: np.ndarray) -> int:
        """Offer a batch of candidates; returns how many were retained.

        Equivalent to ``for s, i in zip(scores, ids): push(s, i)`` but
        vectorized: offers that cannot beat the current threshold are
        masked out in one numpy pass, and of the rest only the ``k``
        lexicographically smallest ``(score, id)`` pairs — the only ones
        that can appear in the final heap — are pushed. The resulting
        heap state is identical to the sequential loop's.
        """
        scores = np.asarray(scores, dtype=np.float64)
        ids = np.asarray(ids, dtype=np.int64)
        if scores.shape != ids.shape or scores.ndim != 1:
            raise ValueError(
                f"scores and ids must be 1-D and congruent, got "
                f"{scores.shape} and {ids.shape}"
            )
        if scores.size == 0:
            return 0
        if self.is_full:
            # push() retains an offer only when (score, id) is
            # lexicographically smaller than the root's pair.
            root_score, root_id = -self._heap[0][0], -self._heap[0][1]
            keep = (scores < root_score) | (
                (scores == root_score) & (ids < root_id)
            )
            scores, ids = scores[keep], ids[keep]
            if scores.size == 0:
                return 0
        if scores.size > self.k:
            order = np.lexsort((ids, scores))[: self.k]
            scores, ids = scores[order], ids[order]
        retained = 0
        for score, cid in zip(scores.tolist(), ids.tolist()):
            retained += self.push(score, cid)
        return retained

    def items(self) -> list[tuple[float, int]]:
        """Retained ``(score, id)`` pairs, best first."""
        return sorted((-s, -i) for s, i in self._heap)

    def items_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Retained scores and ids as arrays, best first.

        The vectorized form of :meth:`items` used by the executor's
        result collection: one array conversion plus one lexsort
        instead of per-entry tuple building. Ids are exact — they stay
        well below 2**53, so the float64 round-trip is lossless.
        """
        if not self._heap:
            return (
                np.empty(0, dtype=np.float64),
                np.empty(0, dtype=np.int64),
            )
        entries = np.array(self._heap, dtype=np.float64)
        scores = -entries[:, 0]
        ids = (-entries[:, 1]).astype(np.int64)
        order = np.lexsort((ids, scores))
        return scores[order], ids[order]
