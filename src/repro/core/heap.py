"""Bounded top-K heap with a pruning threshold.

The max-heap of Algorithm 1: it retains the K best (smallest-score)
candidates seen so far, and its worst retained score is the pruning
threshold ``tau``. Ties are broken by candidate id so every engine in
the library produces byte-identical result sets.
"""

from __future__ import annotations

import heapq
import math


class TopKHeap:
    """Keeps the ``k`` lexicographically smallest ``(score, id)`` pairs.

    Scores follow the library convention: smaller is better (squared L2,
    or negated similarity). ``threshold`` is ``+inf`` until the heap is
    full, after which it equals the worst retained score — the value
    partial distances are compared against for early-stop pruning.
    """

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.k = k
        # heapq is a min-heap; store (-score, -id) so the root is the
        # lexicographically largest retained (score, id) pair.
        self._heap: list[tuple[float, int]] = []

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def is_full(self) -> bool:
        return len(self._heap) >= self.k

    @property
    def threshold(self) -> float:
        """Current pruning threshold ``tau`` (``+inf`` until full)."""
        if not self.is_full:
            return math.inf
        return -self._heap[0][0]

    def push(self, score: float, candidate_id: int) -> bool:
        """Offer a candidate; returns True if it was retained.

        A candidate displaces the current worst entry when its
        ``(score, id)`` pair is lexicographically smaller.
        """
        entry = (-float(score), -int(candidate_id))
        if not self.is_full:
            heapq.heappush(self._heap, entry)
            return True
        if entry > self._heap[0]:
            heapq.heapreplace(self._heap, entry)
            return True
        return False

    def items(self) -> list[tuple[float, int]]:
        """Retained ``(score, id)`` pairs, best first."""
        return sorted((-s, -i) for s, i in self._heap)
