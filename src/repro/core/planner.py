"""Fine-grained query planner (paper Section 4.2).

Enumerates candidate partition grids, scores each with the cost model,
and returns the cheapest plan. Pure vector / pure dimension modes skip
the search and materialize their fixed grid directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import Mode, resolve_mode
from repro.core.cost_model import (
    CostParameters,
    PlanCost,
    WorkloadProfile,
    estimate_survival,
    plan_cost,
)
from repro.distance.metrics import Metric
from repro.core.partition import PartitionPlan, build_plan, grid_shapes
from repro.index.ivf import IVFFlatIndex


@dataclass(frozen=True)
class PlanDecision:
    """Outcome of planning.

    Attributes:
        plan: the chosen partition plan.
        cost: its scored cost.
        evaluated: every (grid shape, cost) pair considered, so callers
            can inspect why the winner won.
    """

    plan: PartitionPlan
    cost: PlanCost
    evaluated: tuple[tuple[tuple[int, int], PlanCost], ...]


class QueryPlanner:
    """Chooses a partition plan for an index / workload / cluster triple.

    Args:
        index: trained IVF index to distribute.
        params: hardware cost parameters (usually derived from the
            simulated cluster).
        k: top-K size assumed when pricing result messages.
    """

    def __init__(
        self, index: IVFFlatIndex, params: CostParameters, k: int = 10
    ) -> None:
        if not index.is_trained:
            raise RuntimeError("planner requires a trained index")
        self.index = index
        self.params = params
        self.k = k

    def profile(self, queries: np.ndarray, nprobe: int) -> WorkloadProfile:
        """Measure probe statistics for a workload sample."""
        return WorkloadProfile.measure(self.index, queries, nprobe)

    def list_weights(
        self, profile: WorkloadProfile | None, load_aware: bool
    ) -> np.ndarray:
        """Per-list expected work used for shard assignment.

        Load-aware weighting multiplies list size by its probe
        frequency (plus-one smoothed so unprobed lists still carry
        their storage weight); the oblivious variant uses sizes alone.
        """
        sizes = self.index.list_sizes().astype(np.float64)
        if not load_aware or profile is None:
            return sizes
        return sizes * (profile.list_frequency + 1.0)

    def choose(
        self,
        n_machines: int,
        mode: "Mode | str",
        profile: WorkloadProfile | None = None,
        load_aware: bool = True,
        balanced: bool = True,
        pruning: bool = True,
        forced_grid: "tuple[int, int] | None" = None,
        replicas: int = 1,
    ) -> PlanDecision:
        """Select a plan.

        Args:
            n_machines: worker count.
            mode: ``harmony`` (cost-model search), ``harmony-vector``
                or ``harmony-dimension`` (fixed grids).
            profile: workload sample statistics; when None a uniform
                probe distribution over lists is assumed.
            load_aware: weight shard assignment by probe frequency.
            balanced: use balanced (vs naive contiguous) assignment.
            pruning: price dimension-including plans with a pilot
                pruning-survival measurement (L2 only; the engine's
                early-stop pruning must be enabled for this to be
                faithful).
            forced_grid: pin the grid to ``(B_vec, B_dim)`` instead of
                searching (ablation experiments).
            replicas: copies per grid block. The cost model prices the
                primaries; replica routing is a runtime load-balancing
                lever handled by the engine.
        """
        mode = resolve_mode(mode)
        if profile is None:
            profile = self._uniform_profile()
        weights = self.list_weights(profile, load_aware)
        survival_cache: dict[int, np.ndarray | None] = {1: None}

        if forced_grid is not None:
            shapes = [forced_grid]
        elif mode is Mode.VECTOR:
            shapes = [(n_machines, 1)]
        elif mode is Mode.DIMENSION:
            shapes = [(1, n_machines)]
        else:
            shapes = [
                (b_vec, b_dim)
                for b_vec, b_dim in grid_shapes(n_machines)
                if b_dim <= self.index.dim
            ]

        evaluated: list[tuple[tuple[int, int], PlanCost]] = []
        best: tuple[PartitionPlan, PlanCost] | None = None
        for b_vec, b_dim in shapes:
            plan = build_plan(
                self.index,
                n_machines=n_machines,
                n_vector_shards=b_vec,
                n_dim_blocks=b_dim,
                list_weights=weights,
                balanced=balanced,
                replicas=replicas,
            )
            survival = self._survival_for(
                b_dim, profile, pruning, survival_cache
            )
            cost = plan_cost(
                plan,
                self.index,
                profile,
                self.params,
                k=self.k,
                survival=survival,
            )
            evaluated.append(((b_vec, b_dim), cost))
            if best is None or cost.total < best[1].total:
                best = (plan, cost)
        assert best is not None  # shapes is never empty
        return PlanDecision(
            plan=best[0], cost=best[1], evaluated=tuple(evaluated)
        )

    def _survival_for(
        self,
        n_blocks: int,
        profile: WorkloadProfile,
        pruning: bool,
        cache: dict[int, np.ndarray | None],
    ) -> np.ndarray | None:
        """Pilot-measured pruning survival for a block count (cached)."""
        if n_blocks not in cache:
            usable = (
                pruning
                and profile.queries.size > 0
                and self.index.metric is Metric.L2
            )
            if usable:
                cache[n_blocks] = estimate_survival(
                    self.index,
                    profile.queries,
                    nprobe=profile.nprobe,
                    n_blocks=n_blocks,
                    k=self.k,
                )
            else:
                cache[n_blocks] = None
        return cache[n_blocks]

    def _uniform_profile(self) -> WorkloadProfile:
        """Fallback profile: every list equally likely to be probed."""
        nlist = self.index.nlist
        nprobe = min(8, nlist)
        probes = np.tile(np.arange(nprobe, dtype=np.int64), (1, 1))
        return WorkloadProfile(
            n_queries=1,
            nprobe=nprobe,
            probes=probes,
            list_frequency=np.full(nlist, nprobe / nlist, dtype=np.float64),
            queries=np.empty((0, self.index.dim), dtype=np.float32),
        )
