"""Multi-granularity partition plans (paper Sections 4.1-4.2).

A partition plan is a grid: ``n_vector_shards`` vector-based shards
(each a group of IVF inverted lists) crossed with ``n_dim_blocks``
dimension slices. Grid block ``(v, d)`` — shard ``v`` restricted to
slice ``d`` — is placed on one machine, exactly as in the paper's
Figure 4(a) where blocks ``V1D1 .. V2D3`` land on machines ``M1..M6``.

Pure vector partitioning is the ``(N, 1)`` grid; pure dimension
partitioning is ``(1, N)``; everything in between is a hybrid plan the
cost model can choose.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distance.partial import DimensionSlices
from repro.index.ivf import IVFFlatIndex


@dataclass(frozen=True)
class PartitionPlan:
    """A fully materialized partition plan ``pi``.

    Attributes:
        n_machines: workers the plan targets.
        n_vector_shards: ``B_vec`` — vector-based shard count.
        n_dim_blocks: ``B_dim`` — dimension-slice count.
        slices: the dimension slicing shared by all shards.
        shard_of_list: ``(nlist,)`` map from inverted list to shard.
        placement: ``(n_vector_shards, n_dim_blocks)`` map from grid
            block to its *primary* machine id.
        replica_placement: optional ``(n_vector_shards, n_dim_blocks,
            R)`` map to every replica's machine (column 0 must equal
            ``placement``); replication trades memory for read
            scaling, the alternative skew remedy the benchmark suite
            compares against Harmony's hybrid grids.
    """

    n_machines: int
    n_vector_shards: int
    n_dim_blocks: int
    slices: DimensionSlices
    shard_of_list: np.ndarray
    placement: np.ndarray
    replica_placement: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.n_vector_shards <= 0 or self.n_dim_blocks <= 0:
            raise ValueError("shard and block counts must be positive")
        if self.slices.n_slices != self.n_dim_blocks:
            raise ValueError(
                f"slices has {self.slices.n_slices} blocks, plan expects "
                f"{self.n_dim_blocks}"
            )
        if self.placement.shape != (self.n_vector_shards, self.n_dim_blocks):
            raise ValueError(
                f"placement shape {self.placement.shape} does not match grid "
                f"({self.n_vector_shards}, {self.n_dim_blocks})"
            )
        if self.shard_of_list.min(initial=0) < 0 or (
            self.shard_of_list.max(initial=0) >= self.n_vector_shards
        ):
            raise ValueError("shard_of_list contains out-of-range shard ids")
        if self.placement.min() < 0 or self.placement.max() >= self.n_machines:
            raise ValueError("placement contains out-of-range machine ids")
        if self.replica_placement is not None:
            expected = (self.n_vector_shards, self.n_dim_blocks)
            if self.replica_placement.shape[:2] != expected:
                raise ValueError(
                    "replica_placement grid shape "
                    f"{self.replica_placement.shape[:2]} != {expected}"
                )
            if not np.array_equal(
                self.replica_placement[:, :, 0], self.placement
            ):
                raise ValueError(
                    "replica_placement[..., 0] must equal placement"
                )
            if (
                self.replica_placement.min() < 0
                or self.replica_placement.max() >= self.n_machines
            ):
                raise ValueError(
                    "replica_placement contains out-of-range machine ids"
                )

    @property
    def replicas(self) -> int:
        """Copies of every grid block (1 = no replication)."""
        if self.replica_placement is None:
            return 1
        return int(self.replica_placement.shape[2])

    @property
    def kind(self) -> str:
        """``"vector"``, ``"dimension"`` or ``"hybrid"``."""
        if self.n_dim_blocks == 1:
            return "vector"
        if self.n_vector_shards == 1:
            return "dimension"
        return "hybrid"

    def machine_of(self, shard: int, block: int) -> int:
        """Primary machine hosting grid block ``(shard, block)``."""
        return int(self.placement[shard, block])

    def replica_machines(self, shard: int, block: int) -> np.ndarray:
        """Every machine holding a copy of grid block ``(shard, block)``."""
        if self.replica_placement is None:
            return np.array([self.placement[shard, block]], dtype=np.int64)
        return self.replica_placement[shard, block].astype(np.int64)

    def lists_of_shard(self, shard: int) -> np.ndarray:
        """Inverted-list ids assigned to ``shard``."""
        return np.flatnonzero(self.shard_of_list == shard)

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.kind} plan: {self.n_vector_shards} vector shard(s) x "
            f"{self.n_dim_blocks} dimension block(s) on {self.n_machines} "
            f"machine(s)"
        )


def grid_shapes(n_machines: int) -> list[tuple[int, int]]:
    """All ``(B_vec, B_dim)`` factor pairs with ``B_vec * B_dim == N``.

    These are the candidate grids the planner scores; the list always
    contains the pure-vector ``(N, 1)`` and pure-dimension ``(1, N)``
    extremes.
    """
    if n_machines <= 0:
        raise ValueError(f"n_machines must be positive, got {n_machines}")
    shapes = []
    for b_vec in range(1, n_machines + 1):
        if n_machines % b_vec == 0:
            shapes.append((b_vec, n_machines // b_vec))
    return shapes


def assign_lists_balanced(
    list_weights: np.ndarray, n_shards: int
) -> np.ndarray:
    """Greedy balanced assignment of inverted lists to shards.

    Lists are placed heaviest-first onto the currently lightest shard
    (longest-processing-time scheduling), which keeps expected per-shard
    work within a small factor of optimal. ``list_weights`` is usually
    ``list_size * expected_probe_frequency`` — the load-aware weighting
    of Section 4.2.

    Returns:
        ``(nlist,)`` array of shard ids.
    """
    weights = np.asarray(list_weights, dtype=np.float64)
    if n_shards <= 0:
        raise ValueError(f"n_shards must be positive, got {n_shards}")
    order = np.argsort(-weights, kind="stable")
    shard_totals = np.zeros(n_shards, dtype=np.float64)
    assignment = np.empty(weights.shape[0], dtype=np.int64)
    for list_id in order:
        shard = int(np.argmin(shard_totals))
        assignment[list_id] = shard
        shard_totals[shard] += weights[list_id]
    return assignment


def assign_lists_contiguous(nlist: int, n_shards: int) -> np.ndarray:
    """Naive contiguous assignment: list ``l`` goes to shard ``l*S//nlist``.

    The load-oblivious baseline used when ``enable_load_balance`` is
    off (Section 6.3.2's "balanced load" ablation lever).
    """
    if n_shards <= 0:
        raise ValueError(f"n_shards must be positive, got {n_shards}")
    return (np.arange(nlist, dtype=np.int64) * n_shards) // nlist


def round_robin_placement(
    n_vector_shards: int, n_dim_blocks: int, n_machines: int
) -> np.ndarray:
    """Grid-block to machine placement.

    When the grid size equals the machine count every block gets its own
    machine (the paper's standard deployment). Larger grids wrap around
    round-robin; smaller grids leave machines idle.
    """
    total = n_vector_shards * n_dim_blocks
    flat = np.arange(total, dtype=np.int64) % n_machines
    return flat.reshape(n_vector_shards, n_dim_blocks)


def replicated_placement(
    primary: np.ndarray, n_machines: int, replicas: int
) -> np.ndarray:
    """Extend a primary placement with rotated replica machines.

    Replica ``r`` of a block lands ``r`` machines after its primary
    (mod ``n_machines``), so all copies live on distinct machines.

    Raises:
        ValueError: when ``replicas`` exceeds the machine count.
    """
    if replicas <= 0:
        raise ValueError(f"replicas must be positive, got {replicas}")
    if replicas > n_machines:
        raise ValueError(
            f"cannot place {replicas} replicas on {n_machines} machines"
        )
    stacked = np.stack(
        [(primary + r) % n_machines for r in range(replicas)], axis=-1
    )
    return stacked.astype(np.int64)


def build_plan(
    index: IVFFlatIndex,
    n_machines: int,
    n_vector_shards: int,
    n_dim_blocks: int,
    list_weights: np.ndarray | None = None,
    balanced: bool = True,
    replicas: int = 1,
) -> PartitionPlan:
    """Materialize a plan for a trained index.

    Args:
        index: trained IVF index whose lists are being distributed.
        n_machines: target machine count.
        n_vector_shards / n_dim_blocks: grid shape.
        list_weights: per-list expected work (defaults to list sizes).
        balanced: use load-aware balanced assignment (True) or naive
            contiguous assignment (False).
        replicas: copies per grid block (read scaling at a memory cost).
    """
    if not index.is_trained:
        raise RuntimeError("cannot build a plan for an untrained index")
    if list_weights is None:
        list_weights = index.list_sizes().astype(np.float64)
    if balanced:
        shard_of_list = assign_lists_balanced(list_weights, n_vector_shards)
    else:
        shard_of_list = assign_lists_contiguous(index.nlist, n_vector_shards)
    placement = round_robin_placement(
        n_vector_shards, n_dim_blocks, n_machines
    )
    replica_placement = None
    if replicas > 1:
        replica_placement = replicated_placement(
            placement, n_machines, replicas
        )
    return PartitionPlan(
        n_machines=n_machines,
        n_vector_shards=n_vector_shards,
        n_dim_blocks=n_dim_blocks,
        slices=DimensionSlices.even(index.dim, n_dim_blocks),
        shard_of_list=shard_of_list,
        placement=placement,
        replica_placement=replica_placement,
    )
