"""Real-parallelism executor (no simulation) — compatibility name.

The multithreaded host executor now lives in
:mod:`repro.core.executor.threads`; the algorithm it runs is the shared
:class:`~repro.core.executor.kernel.ScanKernel`, the same code path the
simulated engine and the serial reference oracle execute. This module
keeps the historical :class:`ThreadedSearcher` name importable for
existing callers; new code should use
:class:`~repro.core.executor.threads.ThreadBackend` (or select
``backend="thread"`` on :class:`~repro.core.config.HarmonyConfig`).
"""

from __future__ import annotations

from repro.core.executor.threads import ThreadBackend


class ThreadedSearcher(ThreadBackend):
    """Historical alias of :class:`ThreadBackend`.

    Identical constructor and behaviour; kept so pre-executor code and
    examples continue to work unchanged.
    """
