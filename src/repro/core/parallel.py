"""Real-parallelism executor (no simulation).

The :class:`~repro.core.pipeline.PipelineEngine` models a distributed
cluster's *timing*; this module executes the same algorithm — prewarm,
per-shard dimension pipeline, lossless pruning — on actual host
threads, for users who want to run HARMONY-style pruned search on a
multicore machine rather than study its distributed behaviour.

Queries are independent, so the searcher parallelizes across them;
numpy kernels release the GIL while they run, so overlap grows with
per-query work (large candidate sets and dimensionalities). Results
are byte-identical to the simulated engine and to a single-node IVF
scan, regardless of thread count — that invariance, not raw speed, is
the contract this class is tested on.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.core.heap import TopKHeap
from repro.core.partition import PartitionPlan, build_plan
from repro.core.pruning import ShardScan
from repro.core.results import SearchResult
from repro.core.routing import shard_candidate_lists, touched_shards
from repro.distance.metrics import Metric, normalize_rows
from repro.distance.partial import slice_norms
from repro.index.ivf import IVFFlatIndex


class ThreadedSearcher:
    """Multithreaded HARMONY-style pruned search on the host machine.

    Args:
        index: trained+populated IVF index.
        plan: partition plan defining shards and dimension slices;
            defaults to a single-shard plan with 4 dimension slices
            (pruning-friendly).
        n_threads: worker threads (default: ``ThreadPoolExecutor``'s).
        prewarm_size: heap-seeding candidates per query (0 disables
            pruning entirely).
        enable_pruning: toggle lossless early-stop pruning.
    """

    def __init__(
        self,
        index: IVFFlatIndex,
        plan: PartitionPlan | None = None,
        n_threads: int | None = None,
        prewarm_size: int = 32,
        enable_pruning: bool = True,
    ) -> None:
        if not index.is_trained:
            raise RuntimeError("searcher requires a trained index")
        if n_threads is not None and n_threads <= 0:
            raise ValueError(f"n_threads must be positive, got {n_threads}")
        if prewarm_size < 0:
            raise ValueError(
                f"prewarm_size must be non-negative, got {prewarm_size}"
            )
        self.index = index
        if plan is None:
            n_blocks = min(4, index.dim)
            plan = build_plan(
                index, n_machines=n_blocks, n_vector_shards=1,
                n_dim_blocks=n_blocks,
            )
        self.plan = plan
        self.n_threads = n_threads
        self.prewarm_size = prewarm_size
        self.enable_pruning = enable_pruning
        self._base_slice_norms: np.ndarray | None = None
        if index.metric is not Metric.L2:
            self._base_slice_norms = slice_norms(index.base, plan.slices)

    def search(
        self,
        queries: np.ndarray,
        k: int,
        nprobe: int = 1,
        filter_labels: "np.ndarray | list[int] | None" = None,
    ) -> SearchResult:
        """Pruned top-``k`` search, parallel across queries.

        Returns exactly what ``IVFFlatIndex.search`` would with the
        same parameters (including the optional label filter).
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        if self.index.metric is Metric.COSINE:
            queries = normalize_rows(queries)
        probes = self.index.probe(queries, nprobe)
        allowed = self.index.allowed_mask(filter_labels)
        nq = queries.shape[0]
        out_dist = np.full((nq, k), np.inf, dtype=np.float64)
        out_ids = np.full((nq, k), -1, dtype=np.int64)

        def run_query(i: int) -> None:
            heap = self._search_one(queries[i], probes[i], k, allowed)
            for rank, (score, cid) in enumerate(heap.items()):
                out_dist[i, rank] = score
                out_ids[i, rank] = cid

        with ThreadPoolExecutor(max_workers=self.n_threads) as pool:
            list(pool.map(run_query, range(nq)))
        return SearchResult(distances=out_dist, ids=out_ids)

    def _search_one(
        self,
        query: np.ndarray,
        probe_row: np.ndarray,
        k: int,
        allowed: np.ndarray | None = None,
    ) -> TopKHeap:
        """One query through prewarm + per-shard dimension pipelines."""
        heap = TopKHeap(k)
        prewarmed = self._prewarm(query, probe_row, heap, allowed)
        for shard in touched_shards(self.plan, probe_row):
            lists_here = shard_candidate_lists(
                self.plan, probe_row, int(shard)
            )
            candidates = self.index.candidates(lists_here, allowed=allowed)
            if prewarmed.size:
                candidates = np.setdiff1d(
                    candidates, prewarmed, assume_unique=False
                )
            if candidates.size == 0:
                continue
            norms = None
            if self._base_slice_norms is not None:
                norms = self._base_slice_norms[candidates]
            scan = ShardScan(
                base=self.index.base,
                candidate_ids=candidates,
                query=query,
                slices=self.plan.slices,
                metric=self.index.metric,
                base_slice_norms=norms,
            )
            for block in range(self.plan.n_dim_blocks):
                if scan.n_alive == 0:
                    break
                scan.process_slice(block)
                if self.enable_pruning:
                    scan.prune(heap.threshold)
            if scan.n_alive:
                ids, scores = scan.survivors()
                for cid, score in zip(ids, scores):
                    heap.push(float(score), int(cid))
        return heap

    def _prewarm(
        self,
        query: np.ndarray,
        probe_row: np.ndarray,
        heap: TopKHeap,
        allowed: np.ndarray | None = None,
    ) -> np.ndarray:
        if self.prewarm_size == 0 or not self.enable_pruning:
            return np.empty(0, dtype=np.int64)
        ids = self.index.list_members(int(probe_row[0]))
        if allowed is not None:
            ids = ids[allowed[ids]]
        ids = ids[: self.prewarm_size]
        if ids.size == 0:
            return ids
        rows = self.index.base[ids].astype(np.float64)
        if self.index.metric is Metric.L2:
            diff = rows - query.astype(np.float64)
            scores = np.einsum("ij,ij->i", diff, diff)
        else:
            scores = -(rows @ query.astype(np.float64))
        for cid, score in zip(ids, scores):
            heap.push(float(score), int(cid))
        return ids
