"""Capacity planning: size a deployment for a recall and QPS target.

Operations teams ask the inverse of the benchmark question: not "how
fast is this cluster" but "how many machines do I need for R recall at
Q queries/second". :func:`plan_capacity` answers it by composing the
library's existing pieces — the nprobe tuner fixes the recall knob,
then simulated deployments over increasing machine counts find the
smallest cluster whose measured throughput meets the target.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bench.tuning import tune_nprobe
from repro.cluster.cluster import Cluster
from repro.core.config import HarmonyConfig, Mode
from repro.core.database import HarmonyDB
from repro.index.ivf import IVFFlatIndex


@dataclass(frozen=True)
class CapacityPlan:
    """Outcome of capacity planning.

    Attributes:
        n_machines: smallest machine count meeting the QPS target (the
            largest candidate when none does).
        nprobe: operating point chosen for the recall target.
        achieved_recall: measured recall at that nprobe.
        achieved_qps: simulated throughput at the chosen size.
        target_met: whether both targets were satisfied.
        plan_summary: the partition grid the cost model chose.
        trace: every (n_machines, qps) measured, ascending.
    """

    n_machines: int
    nprobe: int
    achieved_recall: float
    achieved_qps: float
    target_met: bool
    plan_summary: str
    trace: tuple[tuple[int, float], ...]


def plan_capacity(
    index: IVFFlatIndex,
    queries: np.ndarray,
    target_recall: float,
    target_qps: float,
    k: int = 10,
    machine_candidates: "tuple[int, ...] | list[int] | None" = None,
    mode: "Mode | str" = Mode.HARMONY,
    seed: int = 0,
) -> CapacityPlan:
    """Find the smallest cluster meeting a recall + QPS target.

    Args:
        index: trained+populated IVF index over the (sampled) corpus.
        queries: calibration query sample.
        target_recall: recall@k target in ``(0, 1]``.
        target_qps: simulated queries/second target.
        k: neighbours per query.
        machine_candidates: ascending machine counts to try
            (default ``(2, 4, 8, 16)``).
        mode: partitioning mode for the sized deployments.
        seed: deployment seed.

    Raises:
        ValueError: for bad targets or empty candidates.
        RuntimeError: if the index is not ready.
    """
    if target_qps <= 0:
        raise ValueError(f"target_qps must be positive, got {target_qps}")
    if machine_candidates is None:
        machine_candidates = (2, 4, 8, 16)
    candidates = sorted(set(int(m) for m in machine_candidates))
    if not candidates or candidates[0] <= 0:
        raise ValueError("machine_candidates must be positive and non-empty")

    queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
    tuned = tune_nprobe(index, queries, target_recall=target_recall, k=k)

    trace: list[tuple[int, float]] = []
    chosen: tuple[int, float, str] | None = None
    for n_machines in candidates:
        config = HarmonyConfig(
            n_machines=n_machines,
            nlist=index.nlist,
            nprobe=tuned.nprobe,
            metric=index.metric,
            mode=mode,  # type: ignore[arg-type]
            seed=seed,
        )
        db = HarmonyDB.from_trained_index(
            index,
            config=config,
            cluster=Cluster(n_machines),
            sample_queries=queries,
            k=k,
        )
        _, report = db.search(queries, k=k)
        trace.append((n_machines, report.qps))
        if chosen is None and report.qps >= target_qps:
            chosen = (n_machines, report.qps, db.plan.describe())
            break
        chosen_fallback = (n_machines, report.qps, db.plan.describe())
    if chosen is None:
        chosen = chosen_fallback
    n_machines, qps, summary = chosen
    return CapacityPlan(
        n_machines=n_machines,
        nprobe=tuned.nprobe,
        achieved_recall=tuned.achieved_recall,
        achieved_qps=qps,
        target_met=tuned.target_met and qps >= target_qps,
        plan_summary=summary,
        trace=tuple(trace),
    )
