"""Result and report types returned by the execution engine."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.stats import TimeBreakdown
from repro.core.pruning import PruningStats


@dataclass(frozen=True)
class SearchResult:
    """Top-K answers for a query batch.

    Attributes:
        distances: ``(nq, k)`` scores, ascending per row (squared L2, or
            negated similarity); padded with ``+inf`` when fewer than
            ``k`` candidates exist.
        ids: ``(nq, k)`` global vector ids, padded with ``-1``.
    """

    distances: np.ndarray
    ids: np.ndarray

    @property
    def n_queries(self) -> int:
        return int(self.ids.shape[0])

    @property
    def k(self) -> int:
        return int(self.ids.shape[1])


@dataclass
class FaultStats:
    """Fault-handling activity observed during one search batch.

    Attributes:
        retries: compute attempts re-issued after hitting a crashed
            worker (each retry charges its backoff delay in simulated
            time).
        failovers: scans moved to a different live replica after the
            originally chosen machine became unavailable.
        hedges: duplicate scans speculatively issued to a second
            replica because the primary's projected latency exceeded
            ``hedge_latency_threshold``.
        hedge_wins: hedged duplicates that finished before the primary.
        dropped_messages: simulated message drops (each one charged a
            retransmit after the schedule's detection delay).
        skipped_scans: shard scans skipped at dispatch because no live
            replica existed (``degraded_mode`` only).
        abandoned_scans: shard scans abandoned mid-run after exhausting
            retries (``degraded_mode`` only).
        worker_respawns: dead host-backend worker processes replaced
            by the supervisor during the batch.
        tasks_requeued: (query-group, shard) tasks re-issued to
            surviving workers after a worker death or injected kill.
        scan_timeouts: tasks that exceeded ``scan_timeout`` and were
            hedged onto a fresh attempt by the straggler watchdog.
    """

    retries: int = 0
    failovers: int = 0
    hedges: int = 0
    hedge_wins: int = 0
    dropped_messages: int = 0
    skipped_scans: int = 0
    abandoned_scans: int = 0
    worker_respawns: int = 0
    tasks_requeued: int = 0
    scan_timeouts: int = 0

    @property
    def any_activity(self) -> bool:
        return any(
            (
                self.retries,
                self.failovers,
                self.hedges,
                self.hedge_wins,
                self.dropped_messages,
                self.skipped_scans,
                self.abandoned_scans,
                self.worker_respawns,
                self.tasks_requeued,
                self.scan_timeouts,
            )
        )

    def to_dict(self) -> dict:
        return {
            "retries": self.retries,
            "failovers": self.failovers,
            "hedges": self.hedges,
            "hedge_wins": self.hedge_wins,
            "dropped_messages": self.dropped_messages,
            "skipped_scans": self.skipped_scans,
            "abandoned_scans": self.abandoned_scans,
            "worker_respawns": self.worker_respawns,
            "tasks_requeued": self.tasks_requeued,
            "scan_timeouts": self.scan_timeouts,
        }


@dataclass
class DegradedReport:
    """Availability / accuracy accounting for a degraded-mode search.

    Attributes:
        coverage: per-query fraction of the candidate set actually
            scanned, in ``[0, 1]``; ``1.0`` means the result is exact
            (identical to a healthy cluster's answer).
        n_degraded_queries: queries with coverage below 1.0.
        skipped_scans / abandoned_scans: shard scans lost to dead
            replicas (at dispatch / mid-run).
        recall_vs_healthy: mean overlap between degraded and healthy
            top-k id sets over the *degraded* queries only (``1.0``
            when no query was degraded — nothing was lost).
    """

    coverage: np.ndarray
    n_degraded_queries: int = 0
    skipped_scans: int = 0
    abandoned_scans: int = 0
    recall_vs_healthy: float = 1.0

    @property
    def mean_coverage(self) -> float:
        if self.coverage.size == 0:
            return 1.0
        return float(np.mean(self.coverage))

    @property
    def min_coverage(self) -> float:
        if self.coverage.size == 0:
            return 1.0
        return float(np.min(self.coverage))

    @property
    def recall_delta(self) -> float:
        """Recall lost to degradation (``0.0`` when fully covered)."""
        return 1.0 - self.recall_vs_healthy

    def to_dict(self) -> dict:
        return {
            "mean_coverage": self.mean_coverage,
            "min_coverage": self.min_coverage,
            "n_degraded_queries": self.n_degraded_queries,
            "skipped_scans": self.skipped_scans,
            "abandoned_scans": self.abandoned_scans,
            "recall_vs_healthy": self.recall_vs_healthy,
            "recall_delta": self.recall_delta,
        }


@dataclass
class ExecutionReport:
    """Simulated-performance record of one search batch.

    Attributes:
        n_queries / k / nprobe: batch parameters.
        simulated_seconds: cluster makespan for the batch.
        breakdown: computation / communication / other seconds summed
            over all nodes (these exceed the makespan when work
            overlaps across machines — that is the parallelism).
        worker_loads: computation seconds per worker, the measured
            ``Load(n, pi)``.
        pruning: per-slice pruning statistics (None when the plan has a
            single dimension block and pruning is structural no-op).
        peak_memory_bytes: maximum resident bytes on any worker,
            including the statically placed index blocks.
        mean_peak_memory_bytes: per-worker peak bytes averaged over
            workers (robust to uneven shard sizes).
        plan_summary: human-readable plan description.
        latencies: per-query latency in seconds; empty when not
            recorded. Simulated runs record dispatch-to-final-merge
            timelines; batches executed by the serving layer record
            each member request's *end-to-end* latency (coalescing
            queue wait + batch service), so percentiles over a served
            batch reflect what individual callers observed rather
            than only the batch's wall time.
        fault_stats: retry / hedge / drop counters (None on a healthy
            run with no fault schedule attached).
        degraded: coverage and recall accounting (None unless the
            search ran with ``degraded_mode=True``).
        trace: span snapshot (:class:`repro.obs.trace.Trace`) of the
            run, when a tracer was attached (None otherwise).
        layout_bytes: resident bytes of the packed (or shared-memory)
            shard layout the executing backend scanned from; ``0``
            when no packed layout was in play (sim backend, packing
            disabled).
        worker_steals: per-worker successful work-steals during the
            batch (process backend only; None elsewhere).
        rerank_candidates: survivors re-ranked against fp32 rows during
            the batch (``0`` on the fp32 scan path, where candidate
            scores are already exact).
        code_bytes: resident bytes of the packed SQ8 code blocks —
            the compact representation sq8 candidate scans stream;
            ``0`` on fp32 or when no packed layout was built.
        routing_cache_hits / routing_cache_misses: probe-cell routing
            lookups served from / missing the memoized
            :class:`~repro.core.routing.RoutingCache` during the batch
            (both ``0`` when no cache is attached, e.g. sim backend).
        routing_cache_evictions: routing-cache entries evicted under
            capacity pressure during the batch.
        result_cache_hits / result_cache_misses: queries answered from
            / missing the deployment's :class:`repro.cache.ResultCache`
            during the batch (all ``0`` when caching is disabled).
        result_cache_semantic_hits: subset of ``result_cache_hits``
            served by the ε-ball semantic tier rather than an exact
            byte match.
        result_cache_evictions: result-cache entries evicted under
            capacity pressure during the batch.
        result_cache_invalidations: cached entries dropped by index /
            layout generation moves during the batch.
        result_cache_bytes: resident bytes of the result cache at
            batch end (queries + cached answers; a gauge, not a
            delta).
        queue_seconds: time the batch's requests spent waiting in the
            serving layer's coalescing buffer, summed over requests;
            ``0.0`` outside the serving path.
        layout_generation: base-generation counter of the packed layout
            the batch scanned (bumps only on full rebuilds/compactions;
            ``0`` when no packed layout was in play).
        delta_rows: mutation rows pending in the layout's delta
            segments at batch end — absorbed writes not yet merged
            into the base generation.
        tombstones_pending: removals tombstoned since the base
            generation was built (masked at scan time, reclaimed by
            the next compaction).
        layout_builds / layout_refreshes / layout_compactions: full
            layout constructions, in-place delta refreshes, and
            delta-merge compactions performed during this batch (a
            steady-state read batch reports zeros for all three).
    """

    n_queries: int
    k: int
    nprobe: int
    simulated_seconds: float
    breakdown: TimeBreakdown
    worker_loads: np.ndarray
    pruning: PruningStats | None
    peak_memory_bytes: int
    mean_peak_memory_bytes: float = 0.0
    plan_summary: str = ""
    latencies: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.float64)
    )
    fault_stats: FaultStats | None = None
    degraded: DegradedReport | None = None
    trace: "object | None" = None
    layout_bytes: int = 0
    worker_steals: "list[int] | None" = None
    rerank_candidates: int = 0
    code_bytes: int = 0
    routing_cache_hits: int = 0
    routing_cache_misses: int = 0
    routing_cache_evictions: int = 0
    result_cache_hits: int = 0
    result_cache_misses: int = 0
    result_cache_semantic_hits: int = 0
    result_cache_evictions: int = 0
    result_cache_invalidations: int = 0
    result_cache_bytes: int = 0
    queue_seconds: float = 0.0
    layout_generation: int = 0
    delta_rows: int = 0
    tombstones_pending: int = 0
    layout_builds: int = 0
    layout_refreshes: int = 0
    layout_compactions: int = 0

    @property
    def qps(self) -> float:
        """Simulated queries per second.

        ``0.0`` for an empty / zero-duration batch: there is no
        meaningful throughput to report, and ``0.0`` (unlike ``inf``)
        survives strict JSON serialization.
        """
        if self.simulated_seconds <= 0.0:
            return 0.0
        return self.n_queries / self.simulated_seconds

    @property
    def load_imbalance(self) -> float:
        """Standard deviation of worker loads (paper's ``I(pi)``)."""
        return float(np.std(self.worker_loads))

    @property
    def normalized_imbalance(self) -> float:
        """Coefficient of variation of worker loads (scale-free skew)."""
        mean = float(np.mean(self.worker_loads))
        if mean <= 0.0:
            return 0.0
        return float(np.std(self.worker_loads) / mean)

    def latency_percentile(self, percentile: float) -> float:
        """Simulated per-query latency percentile in seconds.

        ANN serving is latency-sensitive (the paper's "milliseconds
        matter" motivation); ``latency_percentile(99)`` gives the tail.

        Raises:
            ValueError: for percentiles outside [0, 100].
            RuntimeError: when latencies were not recorded.
        """
        if not 0.0 <= percentile <= 100.0:
            raise ValueError(
                f"percentile must be in [0, 100], got {percentile}"
            )
        if self.latencies.size == 0:
            raise RuntimeError("no per-query latencies were recorded")
        return float(np.percentile(self.latencies, percentile))

    @property
    def mean_latency(self) -> float:
        """Mean simulated per-query latency in seconds."""
        if self.latencies.size == 0:
            raise RuntimeError("no per-query latencies were recorded")
        return float(np.mean(self.latencies))

    def worker_utilization(self) -> np.ndarray:
        """Per-worker computation busy fraction of the makespan."""
        if self.simulated_seconds <= 0.0:
            return np.zeros_like(self.worker_loads)
        return self.worker_loads / self.simulated_seconds

    def to_dict(self) -> dict:
        """Strictly JSON-serializable summary (for dashboards / logging).

        Every value survives ``json.dumps(..., allow_nan=False)`` —
        no ``inf`` / ``nan`` can appear regardless of batch contents.
        """
        out = {
            "n_queries": self.n_queries,
            "k": self.k,
            "nprobe": self.nprobe,
            "simulated_seconds": float(self.simulated_seconds),
            "qps": self.qps,
            "plan": self.plan_summary,
            "breakdown": {
                "computation": self.breakdown.computation,
                "communication": self.breakdown.communication,
                "other": self.breakdown.other,
            },
            "worker_loads": self.worker_loads.tolist(),
            "load_imbalance": self.load_imbalance,
            "normalized_imbalance": self.normalized_imbalance,
            "peak_memory_bytes": int(self.peak_memory_bytes),
            "mean_peak_memory_bytes": float(self.mean_peak_memory_bytes),
            "layout_bytes": int(self.layout_bytes),
            "rerank_candidates": int(self.rerank_candidates),
            "code_bytes": int(self.code_bytes),
            "routing_cache_hits": int(self.routing_cache_hits),
            "routing_cache_misses": int(self.routing_cache_misses),
            "routing_cache_evictions": int(self.routing_cache_evictions),
            "result_cache_hits": int(self.result_cache_hits),
            "result_cache_misses": int(self.result_cache_misses),
            "result_cache_semantic_hits": int(
                self.result_cache_semantic_hits
            ),
            "result_cache_evictions": int(self.result_cache_evictions),
            "result_cache_invalidations": int(
                self.result_cache_invalidations
            ),
            "result_cache_bytes": int(self.result_cache_bytes),
            "queue_seconds": float(self.queue_seconds),
            "layout_generation": int(self.layout_generation),
            "delta_rows": int(self.delta_rows),
            "tombstones_pending": int(self.tombstones_pending),
            "layout_builds": int(self.layout_builds),
            "layout_refreshes": int(self.layout_refreshes),
            "layout_compactions": int(self.layout_compactions),
        }
        if self.worker_steals is not None:
            out["worker_steals"] = [int(s) for s in self.worker_steals]
        if self.latencies.size:
            out["latency"] = {
                "mean": self.mean_latency,
                "p50": self.latency_percentile(50),
                "p95": self.latency_percentile(95),
                "p99": self.latency_percentile(99),
            }
        if self.pruning is not None:
            out["pruning_ratios"] = self.pruning.ratios().tolist()
        if self.fault_stats is not None:
            out["fault_stats"] = self.fault_stats.to_dict()
        if self.degraded is not None:
            out["degraded"] = self.degraded.to_dict()
        if self.trace is not None:
            out["trace"] = self.trace.to_dict()
        return out


@dataclass
class PlacementReport:
    """Outcome of distributing index blocks to machines.

    Attributes:
        per_machine_bytes: resident index bytes per worker.
        preassign_seconds: simulated time to ship and prepare blocks
            (the "Pre-assign" stage of the paper's Figure 10).
    """

    per_machine_bytes: dict[int, int] = field(default_factory=dict)
    preassign_seconds: float = 0.0

    @property
    def max_machine_bytes(self) -> int:
        if not self.per_machine_bytes:
            return 0
        return max(self.per_machine_bytes.values())

    @property
    def mean_machine_bytes(self) -> float:
        if not self.per_machine_bytes:
            return 0.0
        return sum(self.per_machine_bytes.values()) / len(
            self.per_machine_bytes
        )

    @property
    def total_bytes(self) -> int:
        return sum(self.per_machine_bytes.values())


@dataclass(frozen=True)
class BuildReport:
    """Index construction timing (paper Figure 10's three stages)."""

    train_seconds: float
    add_seconds: float
    preassign_seconds: float
    placement: PlacementReport

    @property
    def total_seconds(self) -> float:
        return self.train_seconds + self.add_seconds + self.preassign_seconds
