"""Dimension-level early-stop pruning (paper Sections 3.1 and 4.3).

:class:`ShardScan` tracks one (query, shard) candidate batch through
the dimension pipeline: it accumulates per-slice partial scores,
compacts the batch to its alive candidates after every prune, and
exposes the lossless lower bound compared against the top-K threshold.
:class:`ShardGroupScan` is its multi-query sibling used by the batched
executor path: one dense block holding every group member's candidates,
advanced through each (shard, slice) stage with a single fused
partial-distance call. :class:`PruningStats` aggregates the per-slice
pruning ratios reported in the paper's Figure 2(a) and Table 3.

Score convention: smaller is better. For L2 the accumulated partial sum
itself lower-bounds the final score; for inner product the bound
subtracts the Cauchy-Schwarz cap on the remaining slices' contribution,
read from a suffix-sum table precomputed at scan construction.
"""

from __future__ import annotations

import numpy as np

from repro.core.layout import sq8_decode
from repro.distance.metrics import Metric
from repro.distance.partial import (
    BOUND_ABS_EPS,
    BOUND_REL_EPS,
    DimensionSlices,
    partial_inner_product,
    partial_squared_l2,
    query_slice_norms,
    suffix_ip_bounds,
)


class PruningStats:
    """Cumulative pruning ratios per pipeline position.

    ``ratio(p)`` is the fraction of candidates already pruned when the
    pipeline reaches slice position ``p`` (position 0 is always 0.0,
    matching the "First Slice" column of Table 3).
    """

    def __init__(self, n_slices: int) -> None:
        if n_slices <= 0:
            raise ValueError(f"n_slices must be positive, got {n_slices}")
        self.n_slices = n_slices
        self.pruned_before = np.zeros(n_slices, dtype=np.float64)
        self.totals = np.zeros(n_slices, dtype=np.float64)

    def record(self, position: int, n_pruned: int, n_total: int) -> None:
        """Record that ``n_pruned`` of ``n_total`` candidates were already
        pruned when slice position ``position`` started."""
        if not 0 <= position < self.n_slices:
            raise IndexError(
                f"position {position} out of range [0, {self.n_slices})"
            )
        if n_total < 0 or n_pruned < 0 or n_pruned > n_total:
            raise ValueError(
                f"invalid counts: pruned={n_pruned}, total={n_total}"
            )
        self.pruned_before[position] += n_pruned
        self.totals[position] += n_total

    def merge(self, other: "PruningStats") -> None:
        """Accumulate another stats object (same slice count) in place."""
        if other.n_slices != self.n_slices:
            raise ValueError("cannot merge stats with different slice counts")
        self.pruned_before += other.pruned_before
        self.totals += other.totals

    def ratios(self) -> np.ndarray:
        """Per-position pruning fractions in ``[0, 1]``."""
        out = np.zeros(self.n_slices, dtype=np.float64)
        mask = self.totals > 0
        out[mask] = self.pruned_before[mask] / self.totals[mask]
        return out

    def average_ratio(self) -> float:
        """Mean of the per-position ratios (Table 3's last column)."""
        return float(np.mean(self.ratios()))


class ShardScan:
    """Pipelined partial-distance scan of one (query, shard) batch.

    The scan keeps *dense* state: after every prune it compacts rows,
    ids, accumulated scores, and norm tables down to the alive
    candidates, so each slice stage touches only surviving rows (no
    per-slice ``rows[alive_idx]`` re-gather, no bound arithmetic for
    already-dead candidates). :attr:`alive` remains a full-length mask
    over the *original* candidate order for reporting.

    Args:
        base: full base-vector matrix (rows indexed by global id).
            Optional when ``rows`` is given.
        candidate_ids: global ids of this shard's candidates.
        query: the query vector, full dimensionality.
        slices: the plan's dimension slicing.
        metric: L2 or inner-product family.
        base_slice_norms: per-candidate per-slice norms (IP only),
            shape ``(n_candidates, n_slices)``.
        rows: pre-gathered candidate rows ``(n_candidates, dim)`` —
            e.g. from a packed shard layout — replacing the
            ``base[candidate_ids]`` gather.
        query_norms: per-slice query norms (IP only), hoisted out of
            the scan when the caller computes them once per query.
    """

    def __init__(
        self,
        base: np.ndarray | None = None,
        candidate_ids: np.ndarray | None = None,
        query: np.ndarray | None = None,
        slices: DimensionSlices | None = None,
        metric: Metric = Metric.L2,
        base_slice_norms: np.ndarray | None = None,
        rows: np.ndarray | None = None,
        query_norms: np.ndarray | None = None,
    ) -> None:
        self.candidate_ids = np.asarray(candidate_ids, dtype=np.int64)
        self.query = np.asarray(query, dtype=np.float32)
        self.slices = slices
        self.metric = metric
        if rows is None:
            if base is None:
                raise ValueError("need either base or pre-gathered rows")
            rows = base[self.candidate_ids]
        self._rows = rows
        n = self.candidate_ids.size
        self.ids = self.candidate_ids
        self.accumulated = np.zeros(n, dtype=np.float64)
        self.alive = np.ones(n, dtype=bool)
        self._orig_idx = np.arange(n, dtype=np.intp)
        self.done: list[int] = []
        self._done_mask = np.zeros(slices.n_slices, dtype=bool)
        self._canonical = True
        if metric is Metric.L2:
            self._contrib = None
            self._suffix = None
        else:
            if base_slice_norms is None:
                raise ValueError(
                    "inner-product pruning requires base_slice_norms"
                )
            if query_norms is None:
                query_norms = query_slice_norms(self.query, slices)
            contrib = np.asarray(base_slice_norms, dtype=np.float64) * (
                np.asarray(query_norms, dtype=np.float64)[None, :]
            )
            self._contrib = contrib
            self._suffix = suffix_ip_bounds(contrib)

    @property
    def n_candidates(self) -> int:
        return self.candidate_ids.size

    @property
    def n_alive(self) -> int:
        return self.ids.size

    @property
    def is_complete(self) -> bool:
        """True when every slice has been accumulated."""
        return len(self.done) == self.slices.n_slices

    def process_slice(self, slice_id: int) -> int:
        """Accumulate slice ``slice_id`` for the alive candidates.

        Returns:
            Number of candidate rows actually processed (the compute
            volume the simulator should charge for this stage).
        """
        if self._done_mask[slice_id]:
            raise ValueError(f"slice {slice_id} already processed")
        n = self.ids.size
        if n:
            start, stop = self.slices.slice_range(slice_id)
            rows = self._rows[:, start:stop]
            q_slice = self.query[start:stop]
            if self.metric is Metric.L2:
                partial = partial_squared_l2(rows, q_slice)
            else:
                partial = -partial_inner_product(rows, q_slice)
            self.accumulated += partial
        if slice_id != len(self.done):
            self._canonical = False
        self.done.append(slice_id)
        self._done_mask[slice_id] = True
        return int(n)

    def lower_bounds(self) -> np.ndarray:
        """Lossless lower bound on every alive candidate's final score.

        For L2 the accumulated sum is itself the bound (remaining
        slices only add non-negative terms). For inner product the
        remaining slices can still *decrease* the score by at most the
        Cauchy-Schwarz cap, which is subtracted. Canonical slice order
        reads the cap straight out of the precomputed suffix-sum table;
        out-of-order processing (the simulator's staggered/adaptive
        schedules) falls back to summing the remaining columns.
        """
        if self.metric is Metric.L2 or self.is_complete:
            return self.accumulated
        assert self._contrib is not None and self._suffix is not None
        if self._canonical:
            raw = self._suffix[:, len(self.done)]
        else:
            remaining = np.flatnonzero(~self._done_mask)
            raw = self._contrib[:, remaining].sum(axis=1)
        return self.accumulated - (raw * (1.0 + BOUND_REL_EPS) + BOUND_ABS_EPS)

    def prune(self, threshold: float) -> int:
        """Kill candidates whose lower bound exceeds ``threshold``.

        Uses a strict comparison so boundary ties survive to the heap,
        keeping results identical to an unpruned scan. Survivors are
        compacted into dense arrays. Returns the number of candidates
        pruned by this call.
        """
        if not np.isfinite(threshold) or self.ids.size == 0:
            return 0
        keep = self.lower_bounds() <= threshold
        if keep.all():
            return 0
        return self._compact(keep)

    def _compact(self, keep: np.ndarray) -> int:
        killed = int(keep.size) - int(keep.sum())
        self.alive[self._orig_idx[~keep]] = False
        self.ids = self.ids[keep]
        self.accumulated = self.accumulated[keep]
        self._rows = self._rows[keep]
        self._orig_idx = self._orig_idx[keep]
        if self._contrib is not None:
            self._contrib = self._contrib[keep]
            self._suffix = self._suffix[keep]
        return killed

    def survivors(self) -> tuple[np.ndarray, np.ndarray]:
        """(ids, final scores) of alive candidates; requires completion."""
        if not self.is_complete:
            raise RuntimeError("scan has unprocessed slices")
        return self.ids, self.accumulated


class ShardGroupScan:
    """Fused multi-query scan of one shard (the batched executor path).

    Holds every group member's candidates at once: the cheap per-row
    bookkeeping (ids, owning query, accumulated scores, bound tables)
    lives in dense concatenated arrays so pruning is one vectorized
    pass against each row's *own* query threshold, while the fat
    float32 row blocks stay per query and are never copied by
    compaction — each (shard, slice) stage gathers just the alive
    rows' slice columns and applies exactly the broadcast kernel
    :class:`ShardScan` uses. Identical inputs, identical reduction,
    hence bitwise-identical partial scores. (An earlier variant scored
    one concatenated block against a materialized per-row query
    matrix; same flop count, but the query-matrix traffic and
    whole-block row compaction made it slower than the per-query
    loop it was meant to beat.)

    Args:
        rows: candidate rows grouped by owning query — either one
            ``(n, dim)`` float32 block ordered by ``query_of``, or a
            list with one ``(n_q, dim)`` block per query (the batched
            executor passes its per-query gathers straight through,
            skipping the concatenation).
        ids: concatenated global candidate ids, ``(n,)``.
        query_of: local (within-group) query index owning each row;
            must be non-decreasing.
        queries: the group's query vectors, ``(n_queries, dim)`` float32.
        slices: the plan's dimension slicing.
        metric: L2 or inner-product family.
        base_slice_norms: per-row per-slice norms (IP only), ``(n, m)``.
        query_norms: per-query per-slice norms (IP only),
            ``(n_queries, m)``.
    """

    def __init__(
        self,
        rows: "np.ndarray | list[np.ndarray]",
        ids: np.ndarray,
        query_of: np.ndarray,
        queries: np.ndarray,
        slices: DimensionSlices,
        metric: Metric = Metric.L2,
        base_slice_norms: np.ndarray | None = None,
        query_norms: np.ndarray | None = None,
    ) -> None:
        self.ids = np.asarray(ids, dtype=np.int64)
        self.query_of = np.asarray(query_of, dtype=np.intp)
        if self.query_of.size and np.any(np.diff(self.query_of) < 0):
            raise ValueError("rows must be grouped by query (sorted query_of)")
        self.queries = np.asarray(queries, dtype=np.float32)
        self.slices = slices
        self.metric = metric
        self.n_queries = self.queries.shape[0]
        n = self.ids.size
        bounds = np.searchsorted(
            self.query_of, np.arange(self.n_queries + 1)
        )
        if isinstance(rows, list):
            self._row_parts = list(rows)
        else:
            self._row_parts = [
                rows[bounds[q] : bounds[q + 1]] for q in range(self.n_queries)
            ]
        if sum(part.shape[0] for part in self._row_parts) != n:
            raise ValueError("row blocks do not cover the candidate ids")
        #: per-query indices of alive rows within the query's block;
        #: None means the whole block is still alive (no copy needed).
        self._alive_parts: "list[np.ndarray | None]" = [None] * self.n_queries
        self.accumulated = np.zeros(n, dtype=np.float64)
        self.done: list[int] = []
        self._done_mask = np.zeros(slices.n_slices, dtype=bool)
        if metric is Metric.L2:
            self._suffix = None
        else:
            if base_slice_norms is None or query_norms is None:
                raise ValueError(
                    "inner-product pruning requires base_slice_norms "
                    "and query_norms"
                )
            contrib = np.asarray(base_slice_norms, dtype=np.float64) * (
                np.asarray(query_norms, dtype=np.float64)[self.query_of]
            )
            self._suffix = suffix_ip_bounds(contrib)

    @property
    def n_alive(self) -> int:
        return self.ids.size

    @property
    def is_complete(self) -> bool:
        return len(self.done) == self.slices.n_slices

    def _alive_size(self, q: int) -> int:
        alive = self._alive_parts[q]
        if alive is None:
            return int(self._row_parts[q].shape[0])
        return int(alive.size)

    def process_slice(self, slice_id: int) -> int:
        """One dimension stage over the whole group.

        Walks the group's per-query row blocks (each owning one
        contiguous segment of the dense bookkeeping arrays) and applies
        the same broadcast partial-distance kernel :class:`ShardScan`
        uses.
        """
        if self._done_mask[slice_id]:
            raise ValueError(f"slice {slice_id} already processed")
        n = self.ids.size
        if n:
            start, stop = self.slices.slice_range(slice_id)
            partial = np.empty(n, dtype=np.float64)
            pos = 0
            for q in range(self.n_queries):
                size = self._alive_size(q)
                if size == 0:
                    continue
                alive = self._alive_parts[q]
                part = self._row_parts[q]
                if alive is None:
                    rows = part[:, start:stop]
                else:
                    rows = part[alive, start:stop]
                q_slice = self.queries[q, start:stop]
                if self.metric is Metric.L2:
                    partial[pos : pos + size] = partial_squared_l2(
                        rows, q_slice
                    )
                else:
                    partial[pos : pos + size] = -partial_inner_product(
                        rows, q_slice
                    )
                pos += size
            self.accumulated += partial
        self.done.append(slice_id)
        self._done_mask[slice_id] = True
        return int(n)

    def lower_bounds(self) -> np.ndarray:
        """Per-row lossless lower bound (same arithmetic as ShardScan)."""
        if self.metric is Metric.L2 or self.is_complete:
            return self.accumulated
        assert self._suffix is not None
        raw = self._suffix[:, len(self.done)]
        return self.accumulated - (raw * (1.0 + BOUND_REL_EPS) + BOUND_ABS_EPS)

    def prune(self, thresholds: np.ndarray) -> int:
        """Compact away rows beating their own query's threshold.

        Args:
            thresholds: per-query thresholds, ``(n_queries,)``; ``inf``
                entries (heap not yet full) keep all their rows.

        Returns:
            Number of rows pruned by this call.
        """
        if self.ids.size == 0:
            return 0
        thr = np.asarray(thresholds, dtype=np.float64)[self.query_of]
        keep = self.lower_bounds() <= thr
        if keep.all():
            return 0
        killed = int(keep.size) - int(keep.sum())
        # The fat row blocks are never copied: only the per-query alive
        # index arrays move, and the next stage gathers alive rows'
        # slice columns directly from the original blocks.
        pos = 0
        for q in range(self.n_queries):
            size = self._alive_size(q)
            if size == 0:
                continue
            seg = keep[pos : pos + size]
            pos += size
            if seg.all():
                continue
            alive = self._alive_parts[q]
            if alive is None:
                self._alive_parts[q] = np.flatnonzero(seg)
            else:
                self._alive_parts[q] = alive[seg]
        self._compact_dense(keep)
        return killed

    def _compact_dense(self, keep: np.ndarray) -> None:
        """Compact the dense per-row bookkeeping arrays to ``keep``."""
        self.ids = self.ids[keep]
        self.query_of = self.query_of[keep]
        self.accumulated = self.accumulated[keep]
        if self._suffix is not None:
            self._suffix = self._suffix[keep]

    def survivors(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(ids, final scores, owning query) of surviving rows."""
        if not self.is_complete:
            raise RuntimeError("scan has unprocessed slices")
        return self.ids, self.accumulated, self.query_of


class SQ8ShardScan(ShardScan):
    """Two-phase scan: SQ8 candidate generation, exact fp32 re-rank.

    Phase one walks the *uint8* representation through the dimension
    pipeline — a quarter of the float32 row traffic — accumulating
    per-slice partial scores that are *padded down* by the packed
    reconstruction-error norms, so every accumulated value lower-bounds
    the exact score and pruning stays lossless: any candidate the fp32
    scan would keep, this scan keeps too. Phase two
    (:meth:`survivors`) re-ranks the few remaining candidates against
    their float32 rows with the canonical per-slice kernels in
    canonical slice order — the same per-row float64 reduction the
    fp32 path runs — so final scores (and therefore heap contents) are
    bitwise identical to the fp32 serial oracle.

    Padding: for L2 each slice contributes
    ``max(0, sqrt(approx) - err)**2`` (reverse triangle inequality);
    for the inner-product family ``approx - ||q_s|| * err`` bounds the
    quantization cross-term by Cauchy-Schwarz. The error norms were
    rounded *up* at pack time, and :meth:`lower_bounds` deflates once
    more by the standard float-safety epsilons, so float rounding can
    never flip a keep into a kill.

    Args:
        codes: pre-gathered uint8 candidate codes ``(n, dim)``.
        code_err: per-candidate per-slice error norms ``(n, m)``.
        code_lo / code_scale: per-dimension dequantization params.
        rows_full: the shard's full float32 row block (not copied);
            survivors re-rank via ``rows_full[local]``.
        local: each candidate's row index into ``rows_full``.

    Remaining arguments match :class:`ShardScan`.
    """

    def __init__(
        self,
        candidate_ids: np.ndarray | None = None,
        query: np.ndarray | None = None,
        slices: DimensionSlices | None = None,
        metric: Metric = Metric.L2,
        base_slice_norms: np.ndarray | None = None,
        codes: np.ndarray | None = None,
        code_err: np.ndarray | None = None,
        code_lo: np.ndarray | None = None,
        code_scale: np.ndarray | None = None,
        rows_full: np.ndarray | None = None,
        local: np.ndarray | None = None,
        query_norms: np.ndarray | None = None,
    ) -> None:
        if codes is None or code_err is None or rows_full is None:
            raise ValueError("SQ8 scan requires codes, code_err, rows_full")
        # The uint8 codes ride in the parent's row slot: compaction and
        # slice addressing are identical, only the per-slice arithmetic
        # (overridden below) differs.
        super().__init__(
            candidate_ids=candidate_ids,
            query=query,
            slices=slices,
            metric=metric,
            base_slice_norms=base_slice_norms,
            rows=codes,
            query_norms=query_norms,
        )
        self._err = np.asarray(code_err, dtype=np.float64)
        self._code_lo = np.asarray(code_lo, dtype=np.float64)
        self._code_scale = np.asarray(code_scale, dtype=np.float64)
        self._rows_full = rows_full
        self._local = np.asarray(local, dtype=np.intp)
        if metric is Metric.L2:
            self._qnorms64 = None
        else:
            if query_norms is None:
                query_norms = query_slice_norms(self.query, slices)
            self._qnorms64 = np.asarray(query_norms, dtype=np.float64)
        #: Candidates re-ranked against fp32 by the last survivors()
        #: call (the harmony_rerank_candidates_total metric).
        self.reranked = 0

    def process_slice(self, slice_id: int) -> int:
        """Accumulate one slice's error-padded SQ8 partial scores."""
        if self._done_mask[slice_id]:
            raise ValueError(f"slice {slice_id} already processed")
        n = self.ids.size
        if n:
            start, stop = self.slices.slice_range(slice_id)
            decoded = sq8_decode(
                self._rows[:, start:stop],
                self._code_lo[start:stop],
                self._code_scale[start:stop],
            )
            q_slice = self.query[start:stop]
            err = self._err[:, slice_id]
            if self.metric is Metric.L2:
                approx = partial_squared_l2(decoded, q_slice)
                padded = np.square(
                    np.maximum(np.sqrt(approx) - err, 0.0)
                )
            else:
                approx = -partial_inner_product(decoded, q_slice)
                padded = approx - self._qnorms64[slice_id] * err
            self.accumulated += padded
        if slice_id != len(self.done):
            self._canonical = False
        self.done.append(slice_id)
        self._done_mask[slice_id] = True
        return int(n)

    def lower_bounds(self) -> np.ndarray:
        """Error-padded bounds, deflated once more for float safety."""
        raw = super().lower_bounds()
        return raw - (np.abs(raw) * BOUND_REL_EPS + BOUND_ABS_EPS)

    def _compact(self, keep: np.ndarray) -> int:
        killed = super()._compact(keep)
        self._err = self._err[keep]
        self._local = self._local[keep]
        return killed

    def survivors(self) -> tuple[np.ndarray, np.ndarray]:
        """(ids, *exact* scores): re-rank survivors against fp32 rows.

        Gathers only the surviving rows from the shard's float32 block
        and accumulates the canonical per-slice kernels in canonical
        slice order — bitwise the scores the fp32 scan reports.
        """
        if not self.is_complete:
            raise RuntimeError("scan has unprocessed slices")
        n = self.ids.size
        self.reranked = int(n)
        exact = np.zeros(n, dtype=np.float64)
        if n:
            rows = self._rows_full[self._local]
            for slice_id in range(self.slices.n_slices):
                start, stop = self.slices.slice_range(slice_id)
                seg = rows[:, start:stop]
                q_slice = self.query[start:stop]
                if self.metric is Metric.L2:
                    exact += partial_squared_l2(seg, q_slice)
                else:
                    exact += -partial_inner_product(seg, q_slice)
        return self.ids, exact


class SQ8ShardGroupScan(ShardGroupScan):
    """Fused multi-query SQ8 scan (batched sibling of SQ8ShardScan).

    Phase one advances every group member's uint8 codes through each
    (shard, slice) stage with the same error-padded arithmetic as
    :class:`SQ8ShardScan`; phase two re-ranks each query's survivors
    against the shard's float32 rows in canonical slice order, so the
    merged heaps stay bitwise identical to the fp32 serial oracle.

    Args:
        codes: per-query uint8 code blocks (list, one per query).
        code_err: concatenated per-row per-slice error norms ``(n, m)``.
        code_lo / code_scale: per-dimension dequantization params.
        rows_full: the shard's full float32 row block (all queries in a
            group scan the same shard, so one block serves the group).
        local: concatenated row indices into ``rows_full``, ``(n,)``.

    Remaining arguments match :class:`ShardGroupScan`.
    """

    def __init__(
        self,
        codes: "list[np.ndarray]",
        ids: np.ndarray,
        query_of: np.ndarray,
        queries: np.ndarray,
        slices: DimensionSlices,
        metric: Metric = Metric.L2,
        base_slice_norms: np.ndarray | None = None,
        query_norms: np.ndarray | None = None,
        code_err: np.ndarray | None = None,
        code_lo: np.ndarray | None = None,
        code_scale: np.ndarray | None = None,
        rows_full: np.ndarray | None = None,
        local: np.ndarray | None = None,
    ) -> None:
        if code_err is None or rows_full is None or local is None:
            raise ValueError(
                "SQ8 group scan requires code_err, rows_full, local"
            )
        super().__init__(
            rows=codes,
            ids=ids,
            query_of=query_of,
            queries=queries,
            slices=slices,
            metric=metric,
            base_slice_norms=base_slice_norms,
            query_norms=query_norms,
        )
        self._err = np.asarray(code_err, dtype=np.float64)
        self._code_lo = np.asarray(code_lo, dtype=np.float64)
        self._code_scale = np.asarray(code_scale, dtype=np.float64)
        self._rows_full = rows_full
        self._local = np.asarray(local, dtype=np.intp)
        if metric is Metric.L2:
            self._qnorms64 = None
        else:
            self._qnorms64 = np.asarray(query_norms, dtype=np.float64)
        self.reranked = 0

    def process_slice(self, slice_id: int) -> int:
        """One error-padded SQ8 dimension stage over the whole group."""
        if self._done_mask[slice_id]:
            raise ValueError(f"slice {slice_id} already processed")
        n = self.ids.size
        if n:
            start, stop = self.slices.slice_range(slice_id)
            lo = self._code_lo[start:stop]
            scale = self._code_scale[start:stop]
            err_col = self._err[:, slice_id]
            partial = np.empty(n, dtype=np.float64)
            pos = 0
            for q in range(self.n_queries):
                size = self._alive_size(q)
                if size == 0:
                    continue
                alive = self._alive_parts[q]
                part = self._row_parts[q]
                if alive is None:
                    code_block = part[:, start:stop]
                else:
                    code_block = part[alive, start:stop]
                decoded = sq8_decode(code_block, lo, scale)
                q_slice = self.queries[q, start:stop]
                err = err_col[pos : pos + size]
                if self.metric is Metric.L2:
                    approx = partial_squared_l2(decoded, q_slice)
                    partial[pos : pos + size] = np.square(
                        np.maximum(np.sqrt(approx) - err, 0.0)
                    )
                else:
                    approx = -partial_inner_product(decoded, q_slice)
                    partial[pos : pos + size] = (
                        approx - self._qnorms64[q, slice_id] * err
                    )
                pos += size
            self.accumulated += partial
        self.done.append(slice_id)
        self._done_mask[slice_id] = True
        return int(n)

    def lower_bounds(self) -> np.ndarray:
        """Error-padded bounds, deflated once more for float safety."""
        raw = super().lower_bounds()
        return raw - (np.abs(raw) * BOUND_REL_EPS + BOUND_ABS_EPS)

    def _compact_dense(self, keep: np.ndarray) -> None:
        super()._compact_dense(keep)
        self._err = self._err[keep]
        self._local = self._local[keep]

    def survivors(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(ids, *exact* scores, owning query) via fp32 re-rank."""
        if not self.is_complete:
            raise RuntimeError("scan has unprocessed slices")
        n = self.ids.size
        self.reranked = int(n)
        exact = np.zeros(n, dtype=np.float64)
        if n:
            bounds = np.searchsorted(
                self.query_of, np.arange(self.n_queries + 1)
            )
            for q in range(self.n_queries):
                seg_lo, seg_hi = int(bounds[q]), int(bounds[q + 1])
                if seg_hi == seg_lo:
                    continue
                rows = self._rows_full[self._local[seg_lo:seg_hi]]
                for slice_id in range(self.slices.n_slices):
                    start, stop = self.slices.slice_range(slice_id)
                    seg = rows[:, start:stop]
                    q_slice = self.queries[q, start:stop]
                    if self.metric is Metric.L2:
                        exact[seg_lo:seg_hi] += partial_squared_l2(
                            seg, q_slice
                        )
                    else:
                        exact[seg_lo:seg_hi] += -partial_inner_product(
                            seg, q_slice
                        )
        return self.ids, exact, self.query_of
