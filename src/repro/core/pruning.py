"""Dimension-level early-stop pruning (paper Sections 3.1 and 4.3).

:class:`ShardScan` tracks one (query, shard) candidate batch through
the dimension pipeline: it accumulates per-slice partial scores,
maintains the alive mask, and exposes the lossless lower bound compared
against the top-K threshold. :class:`PruningStats` aggregates the
per-slice pruning ratios reported in the paper's Figure 2(a) and
Table 3.

Score convention: smaller is better. For L2 the accumulated partial sum
itself lower-bounds the final score; for inner product the bound
subtracts the Cauchy-Schwarz cap on the remaining slices' contribution.
"""

from __future__ import annotations

import numpy as np

from repro.distance.metrics import Metric
from repro.distance.partial import (
    DimensionSlices,
    partial_inner_product,
    partial_squared_l2,
    remaining_ip_bound,
)


class PruningStats:
    """Cumulative pruning ratios per pipeline position.

    ``ratio(p)`` is the fraction of candidates already pruned when the
    pipeline reaches slice position ``p`` (position 0 is always 0.0,
    matching the "First Slice" column of Table 3).
    """

    def __init__(self, n_slices: int) -> None:
        if n_slices <= 0:
            raise ValueError(f"n_slices must be positive, got {n_slices}")
        self.n_slices = n_slices
        self.pruned_before = np.zeros(n_slices, dtype=np.float64)
        self.totals = np.zeros(n_slices, dtype=np.float64)

    def record(self, position: int, n_pruned: int, n_total: int) -> None:
        """Record that ``n_pruned`` of ``n_total`` candidates were already
        pruned when slice position ``position`` started."""
        if not 0 <= position < self.n_slices:
            raise IndexError(
                f"position {position} out of range [0, {self.n_slices})"
            )
        if n_total < 0 or n_pruned < 0 or n_pruned > n_total:
            raise ValueError(
                f"invalid counts: pruned={n_pruned}, total={n_total}"
            )
        self.pruned_before[position] += n_pruned
        self.totals[position] += n_total

    def merge(self, other: "PruningStats") -> None:
        """Accumulate another stats object (same slice count) in place."""
        if other.n_slices != self.n_slices:
            raise ValueError("cannot merge stats with different slice counts")
        self.pruned_before += other.pruned_before
        self.totals += other.totals

    def ratios(self) -> np.ndarray:
        """Per-position pruning fractions in ``[0, 1]``."""
        out = np.zeros(self.n_slices, dtype=np.float64)
        mask = self.totals > 0
        out[mask] = self.pruned_before[mask] / self.totals[mask]
        return out

    def average_ratio(self) -> float:
        """Mean of the per-position ratios (Table 3's last column)."""
        return float(np.mean(self.ratios()))


class ShardScan:
    """Pipelined partial-distance scan of one (query, shard) batch.

    Args:
        base: full base-vector matrix (rows indexed by global id).
        candidate_ids: global ids of this shard's candidates, ascending.
        query: the query vector, full dimensionality.
        slices: the plan's dimension slicing.
        metric: L2 or inner-product family.
        base_slice_norms: per-candidate per-slice norms (IP only),
            shape ``(n_candidates, n_slices)``.
    """

    def __init__(
        self,
        base: np.ndarray,
        candidate_ids: np.ndarray,
        query: np.ndarray,
        slices: DimensionSlices,
        metric: Metric = Metric.L2,
        base_slice_norms: np.ndarray | None = None,
    ) -> None:
        self.candidate_ids = np.asarray(candidate_ids, dtype=np.int64)
        self.query = np.asarray(query, dtype=np.float32)
        self.slices = slices
        self.metric = metric
        self._rows = base[self.candidate_ids]
        n = self.candidate_ids.size
        self.accumulated = np.zeros(n, dtype=np.float64)
        self.alive = np.ones(n, dtype=bool)
        self.done: list[int] = []
        if metric is Metric.L2:
            self._base_norms = None
            self._query_norms = None
        else:
            if base_slice_norms is None:
                raise ValueError(
                    "inner-product pruning requires base_slice_norms"
                )
            self._base_norms = np.asarray(base_slice_norms, dtype=np.float64)
            self._query_norms = np.array(
                [
                    float(np.linalg.norm(slices.take(self.query, j)))
                    for j in range(slices.n_slices)
                ]
            )

    @property
    def n_candidates(self) -> int:
        return self.candidate_ids.size

    @property
    def n_alive(self) -> int:
        return int(self.alive.sum())

    @property
    def is_complete(self) -> bool:
        """True when every slice has been accumulated."""
        return len(self.done) == self.slices.n_slices

    def process_slice(self, slice_id: int) -> int:
        """Accumulate slice ``slice_id`` for the alive candidates.

        Returns:
            Number of candidate rows actually processed (the compute
            volume the simulator should charge for this stage).
        """
        if slice_id in self.done:
            raise ValueError(f"slice {slice_id} already processed")
        alive_idx = np.flatnonzero(self.alive)
        if alive_idx.size:
            rows = self.slices.take(self._rows[alive_idx], slice_id)
            q_slice = self.slices.take(self.query, slice_id)
            if self.metric is Metric.L2:
                partial = partial_squared_l2(rows, q_slice)
            else:
                partial = -partial_inner_product(rows, q_slice)
            self.accumulated[alive_idx] += partial
        self.done.append(slice_id)
        return int(alive_idx.size)

    def lower_bounds(self) -> np.ndarray:
        """Lossless lower bound on every candidate's final score.

        For L2 the accumulated sum is itself the bound (remaining
        slices only add non-negative terms). For inner product the
        remaining slices can still *decrease* the score by at most the
        Cauchy-Schwarz cap, which is subtracted.
        """
        if self.metric is Metric.L2 or self.is_complete:
            return self.accumulated
        assert self._base_norms is not None and self._query_norms is not None
        cap = remaining_ip_bound(
            self._base_norms,
            self._query_norms,
            self.done,
            self.slices.n_slices,
        )
        return self.accumulated - cap

    def prune(self, threshold: float) -> int:
        """Kill candidates whose lower bound exceeds ``threshold``.

        Uses a strict comparison so boundary ties survive to the heap,
        keeping results identical to an unpruned scan. Returns the
        number of candidates pruned by this call.
        """
        if not np.isfinite(threshold):
            return 0
        before = self.n_alive
        self.alive &= self.lower_bounds() <= threshold
        return before - self.n_alive

    def survivors(self) -> tuple[np.ndarray, np.ndarray]:
        """(ids, final scores) of alive candidates; requires completion."""
        if not self.is_complete:
            raise RuntimeError("scan has unprocessed slices")
        alive_idx = np.flatnonzero(self.alive)
        return self.candidate_ids[alive_idx], self.accumulated[alive_idx]
