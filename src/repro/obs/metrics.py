"""Counters, gauges, and histograms with Prometheus / JSON export.

A :class:`MetricsRegistry` holds metric *families* (one name, one
type, one help string) of labelled *series* (one per distinct label
set), mirroring the Prometheus exposition model:

    registry = MetricsRegistry()
    registry.counter("harmony_retries_total").inc(3)
    registry.gauge("harmony_worker_busy_fraction", worker="2").set(0.81)
    registry.histogram("harmony_queue_wait_seconds").observe(1.2e-5)
    print(registry.to_prometheus())

Metric names follow Prometheus conventions (``snake_case``, unit
suffix, ``_total`` for counters). :func:`report_metrics` maps one
:class:`~repro.core.results.ExecutionReport` — scans, fault counters,
pruning ratios, per-worker loads and busy fractions, latency
percentiles — into a registry, so every simulated run can publish the
quantities behind the paper's Figures 2(b), 7, and 8 without touching
the engine.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

#: Default histogram bucket upper bounds (seconds): spans microseconds
#: to seconds, the range of simulated per-stage waits and latencies.
DEFAULT_BUCKETS = (
    1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1, 1.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _label_key(labels: dict) -> tuple:
    for key in labels:
        if not _LABEL_RE.match(key):
            raise ValueError(f"invalid label name {key!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _format_labels(key: tuple) -> str:
    if not key:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in key)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class Counter:
    """Monotonically increasing count."""

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount


class Gauge:
    """A value that can go up and down."""

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics)."""

    def __init__(self, buckets: tuple = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ValueError(
                f"bucket bounds must be strictly increasing, got {buckets}"
            )
        self.bounds = bounds
        self.counts = [0] * len(bounds)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1

    def cumulative(self) -> "list[tuple[float, int]]":
        """``(upper_bound, cumulative_count)`` pairs, ``+Inf`` last."""
        out = [(bound, c) for bound, c in zip(self.bounds, self.counts)]
        out.append((float("inf"), self.count))
        return out


@dataclass
class _Family:
    kind: str
    help: str
    buckets: tuple | None = None
    series: dict = field(default_factory=dict)


class MetricsRegistry:
    """A set of named metric families with labelled series.

    ``counter`` / ``gauge`` / ``histogram`` get-or-create: the first
    call fixes the family's type (and help / buckets); later calls
    with the same name return the series for the given labels,
    raising on type mismatches instead of silently aliasing.
    """

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}

    def _series(
        self,
        name: str,
        kind: str,
        help: str,
        labels: dict,
        buckets: tuple | None = None,
    ):
        _check_name(name)
        family = self._families.get(name)
        if family is None:
            family = _Family(kind=kind, help=help, buckets=buckets)
            self._families[name] = family
        elif family.kind != kind:
            raise ValueError(
                f"metric {name!r} is a {family.kind}, not a {kind}"
            )
        key = _label_key(labels)
        series = family.series.get(key)
        if series is None:
            if kind == "counter":
                series = Counter()
            elif kind == "gauge":
                series = Gauge()
            else:
                series = Histogram(family.buckets or DEFAULT_BUCKETS)
            family.series[key] = series
        return series

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._series(name, "counter", help, labels)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._series(name, "gauge", help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple | None = None,
        **labels,
    ) -> Histogram:
        return self._series(name, "histogram", help, labels, buckets=buckets)

    def families(self) -> "list[str]":
        return sorted(self._families)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def to_prometheus(self) -> str:
        """Prometheus text exposition (format version 0.0.4)."""
        lines: list[str] = []
        for name in sorted(self._families):
            family = self._families[name]
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.kind}")
            for key in sorted(family.series):
                series = family.series[key]
                if family.kind == "histogram":
                    for bound, count in series.cumulative():
                        le = "+Inf" if bound == float("inf") else (
                            _format_value(bound)
                        )
                        bucket_key = key + (("le", le),)
                        lines.append(
                            f"{name}_bucket"
                            f"{_format_labels(tuple(sorted(bucket_key)))}"
                            f" {count}"
                        )
                    lines.append(
                        f"{name}_sum{_format_labels(key)} "
                        f"{_format_value(series.sum)}"
                    )
                    lines.append(
                        f"{name}_count{_format_labels(key)} {series.count}"
                    )
                else:
                    lines.append(
                        f"{name}{_format_labels(key)} "
                        f"{_format_value(series.value)}"
                    )
        return "\n".join(lines) + "\n"

    def to_dict(self) -> dict:
        """Strictly JSON-serializable dump of every series."""
        out: dict = {}
        for name in sorted(self._families):
            family = self._families[name]
            series_out = []
            for key in sorted(family.series):
                series = family.series[key]
                entry: dict = {"labels": dict(key)}
                if family.kind == "histogram":
                    entry["count"] = series.count
                    entry["sum"] = series.sum
                    entry["buckets"] = [
                        {
                            "le": ("+Inf" if b == float("inf") else b),
                            "count": c,
                        }
                        for b, c in series.cumulative()
                    ]
                else:
                    entry["value"] = series.value
                series_out.append(entry)
            out[name] = {
                "type": family.kind,
                "help": family.help,
                "series": series_out,
            }
        return out


def report_metrics(
    report, registry: "MetricsRegistry | None" = None
) -> MetricsRegistry:
    """Publish one :class:`ExecutionReport` into a registry.

    Maps the report's aggregates onto Prometheus-style families:
    query / scan counts, simulated QPS and makespan, the
    computation / communication / other breakdown (Figures 2(b), 8),
    per-worker loads and busy fractions (Section 5's ``Load(n, pi)``),
    per-slice pruning ratios (Figure 2(a), Table 3), fault counters
    (retries, failovers, hedges, drops, skipped / abandoned scans),
    degraded-mode coverage, and the simulated latency distribution.
    """
    registry = registry if registry is not None else MetricsRegistry()
    registry.counter(
        "harmony_queries_total", "Queries served"
    ).inc(report.n_queries)
    registry.gauge(
        "harmony_simulated_seconds", "Batch makespan (simulated)"
    ).set(report.simulated_seconds)
    registry.gauge("harmony_qps", "Simulated queries per second").set(
        report.qps
    )
    breakdown = report.breakdown
    for category in ("computation", "communication", "other"):
        registry.gauge(
            "harmony_time_seconds",
            "Summed per-node seconds by paper category",
            category=category,
        ).set(getattr(breakdown, category))
    utilization = report.worker_utilization()
    for worker, load in enumerate(report.worker_loads):
        registry.gauge(
            "harmony_worker_load_seconds",
            "Computation seconds per worker (Load(n, pi))",
            worker=worker,
        ).set(float(load))
        registry.gauge(
            "harmony_worker_busy_fraction",
            "Worker computation busy fraction of the makespan",
            worker=worker,
        ).set(float(utilization[worker]))
    registry.gauge(
        "harmony_load_imbalance", "Std dev of worker loads (I(pi))"
    ).set(report.load_imbalance)
    registry.gauge(
        "harmony_layout_bytes",
        "Resident bytes of the packed/shared shard layout scanned",
    ).set(float(getattr(report, "layout_bytes", 0)))
    registry.gauge(
        "harmony_code_bytes",
        "Resident bytes of the packed SQ8 code blocks (0 on fp32)",
    ).set(float(getattr(report, "code_bytes", 0)))
    rerank_candidates = float(getattr(report, "rerank_candidates", 0))
    if rerank_candidates:
        registry.counter(
            "harmony_rerank_candidates_total",
            "Survivors re-ranked against fp32 rows (sq8 scan path)",
        ).inc(rerank_candidates)
    cache_hits = float(getattr(report, "routing_cache_hits", 0))
    cache_misses = float(getattr(report, "routing_cache_misses", 0))
    if cache_hits:
        registry.counter(
            "harmony_routing_cache_hits_total",
            "Probe-cell routing lookups served from the memoized cache",
        ).inc(cache_hits)
    if cache_misses:
        registry.counter(
            "harmony_routing_cache_misses_total",
            "Probe-cell routing lookups that recomputed touched shards",
        ).inc(cache_misses)
    routing_evictions = float(getattr(report, "routing_cache_evictions", 0))
    if routing_evictions:
        registry.counter(
            "harmony_routing_cache_evictions_total",
            "Routing-cache entries evicted under capacity pressure",
        ).inc(routing_evictions)
    result_hits = float(getattr(report, "result_cache_hits", 0))
    if result_hits:
        registry.counter(
            "harmony_result_cache_hits_total",
            "Queries answered from the result cache",
        ).inc(result_hits)
    result_misses = float(getattr(report, "result_cache_misses", 0))
    if result_misses:
        registry.counter(
            "harmony_result_cache_misses_total",
            "Queries that missed the result cache and were scanned",
        ).inc(result_misses)
    semantic_hits = float(
        getattr(report, "result_cache_semantic_hits", 0)
    )
    if semantic_hits:
        registry.counter(
            "harmony_result_cache_semantic_hits_total",
            "Result-cache hits served by the epsilon-ball semantic tier",
        ).inc(semantic_hits)
    result_evictions = float(getattr(report, "result_cache_evictions", 0))
    if result_evictions:
        registry.counter(
            "harmony_result_cache_evictions_total",
            "Result-cache entries evicted under capacity pressure",
        ).inc(result_evictions)
    result_invalidations = float(
        getattr(report, "result_cache_invalidations", 0)
    )
    if result_invalidations:
        registry.counter(
            "harmony_result_cache_invalidations_total",
            "Result-cache entries dropped by index/layout generation moves",
        ).inc(result_invalidations)
    registry.gauge(
        "harmony_result_cache_bytes",
        "Resident bytes of the result cache (queries + cached answers)",
    ).set(float(getattr(report, "result_cache_bytes", 0)))
    registry.gauge(
        "harmony_delta_rows",
        "Mutation rows pending in the layout's delta segments",
    ).set(float(getattr(report, "delta_rows", 0)))
    registry.gauge(
        "harmony_tombstones_pending",
        "Removals tombstoned since the base generation was built",
    ).set(float(getattr(report, "tombstones_pending", 0)))
    registry.gauge(
        "harmony_layout_generation",
        "Base-generation counter of the scanned packed layout",
    ).set(float(getattr(report, "layout_generation", 0)))
    compactions = float(getattr(report, "layout_compactions", 0))
    if compactions:
        registry.counter(
            "harmony_compactions_total",
            "Delta-merge compactions into a fresh base generation",
        ).inc(compactions)
    refreshes = float(getattr(report, "layout_refreshes", 0))
    if refreshes:
        registry.counter(
            "harmony_layout_refreshes_total",
            "In-place delta refreshes of the packed layout",
        ).inc(refreshes)
    queue_seconds = float(getattr(report, "queue_seconds", 0.0))
    if queue_seconds:
        registry.counter(
            "harmony_queue_wait_seconds_total",
            "Serving-layer coalescing queue wait, summed over requests",
        ).inc(queue_seconds)
    worker_steals = getattr(report, "worker_steals", None)
    if worker_steals is not None:
        for worker, steals in enumerate(worker_steals):
            registry.counter(
                "harmony_worker_steals_total",
                "Work-stealing task migrations per pool worker",
                worker=worker,
            ).inc(float(steals))
    if report.pruning is not None:
        total_scans = float(report.pruning.totals[0])
        registry.counter(
            "harmony_scan_candidates_total",
            "Candidates entering the dimension pipeline",
        ).inc(total_scans)
        for position, ratio in enumerate(report.pruning.ratios()):
            registry.gauge(
                "harmony_pruning_ratio",
                "Fraction already pruned entering each slice position",
                position=position,
            ).set(float(ratio))
    if report.fault_stats is not None:
        for key, value in report.fault_stats.to_dict().items():
            registry.counter(
                f"harmony_{key}_total", f"Fault handling: {key}"
            ).inc(value)
    if report.degraded is not None:
        registry.gauge(
            "harmony_mean_coverage", "Mean degraded-mode coverage"
        ).set(report.degraded.mean_coverage)
        registry.gauge(
            "harmony_recall_vs_healthy",
            "Recall of degraded answers vs a healthy rerun",
        ).set(report.degraded.recall_vs_healthy)
    if report.latencies.size:
        latency = registry.histogram(
            "harmony_query_latency_seconds",
            "Per-query simulated latency (dispatch to final merge)",
        )
        for value in report.latencies:
            latency.observe(float(value))
    return registry
