"""Ring-buffered span recording over simulated or wall-clock time.

A :class:`Span` is one half-open interval ``[start, end)`` of activity
on one lane (a simulated node, the client, or a host worker thread),
tagged with a stage name, a paper category (computation /
communication / other — Figures 2(b) and 8), and free-form integer /
float arguments (query index, shard, slice, bytes moved, candidates
alive / pruned).

The :class:`Tracer` records spans into a bounded ring buffer
(:class:`collections.deque` with ``maxlen``), so a long benchmark can
stay traced without unbounded memory: once full, the oldest spans are
dropped and counted in :attr:`Tracer.n_dropped`. When no tracer is
attached to a cluster, the only cost on the hot path is one ``is
None`` check per work item — the simulated timing and the returned
results are bit-identical to an untraced build.

Producers attribute cluster-level work to logical stages through
:meth:`Tracer.context`: the execution engine pushes
``(name, query=…, shard=…, block=…)`` around each cluster call, and
the cluster's own ``compute`` / ``transfer`` recording inherits that
context — the span carries the engine's attribution without the
cluster API having to know about queries.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass

#: The paper's time categories (Figures 2(b) and 8).
CATEGORIES = ("computation", "communication", "other")

#: Default ring-buffer capacity (spans). A traced 60-query batch on a
#: 4-machine, 4-slice plan emits a few thousand spans; the default
#: keeps whole benchmark batches while bounding memory at ~tens of MB.
DEFAULT_CAPACITY = 1 << 16

#: Lane id used for host worker threads whose lane was auto-assigned.
HOST_LANE_BASE = 1000


@dataclass(frozen=True)
class Span:
    """One recorded activity interval.

    Attributes:
        name: logical stage (``route``, ``dispatch``, ``scan``,
            ``query-chunk``, ``partial-forward``, ``result``,
            ``merge``, ``prewarm``, …).
        category: paper time category (one of :data:`CATEGORIES`).
        node: lane id — a simulated worker id, ``-1`` for the client,
            ``-2`` for the client's result-merge timeline, or a
            host-thread lane (``>= HOST_LANE_BASE``).
        start / end: interval bounds — simulated seconds for the sim
            backend, host ``perf_counter`` seconds for wall spans.
        args: extra attribution as a sorted ``(key, value)`` tuple
            (hashable, so spans stay frozen).
    """

    name: str
    category: str
    node: int
    start: float
    end: float
    args: tuple = ()

    @property
    def duration(self) -> float:
        return self.end - self.start

    def args_dict(self) -> dict:
        return dict(self.args)

    def arg(self, key: str, default=None):
        for k, v in self.args:
            if k == key:
                return v
        return default


def _category_totals(spans) -> dict[str, float]:
    totals = {category: 0.0 for category in CATEGORIES}
    for span in spans:
        totals[span.category] = totals.get(span.category, 0.0) + span.duration
    return totals


@dataclass(frozen=True)
class Trace:
    """An immutable snapshot of a tracer's ring buffer.

    This is what lands in ``ExecutionReport.trace``: the spans of the
    most recent run, detached from the live recorder so later searches
    cannot mutate an already-returned report.
    """

    spans: tuple
    n_dropped: int = 0

    def __len__(self) -> int:
        return len(self.spans)

    def category_totals(self) -> dict[str, float]:
        """Summed span seconds per paper category.

        For a simulated run with no spans dropped, these reconcile
        with ``ExecutionReport.breakdown`` to float tolerance — the
        invariant the trace-smoke CI job checks.
        """
        return _category_totals(self.spans)

    def node_ids(self) -> list[int]:
        """Distinct lanes touched, ascending."""
        return sorted({span.node for span in self.spans})

    def for_query(self, query_index: int) -> "tuple[Span, ...]":
        """Spans attributed to one query (by the ``query`` arg)."""
        return tuple(
            s for s in self.spans if s.arg("query") == query_index
        )

    def to_chrome(self, fault_events=()) -> dict:
        """Chrome ``trace_event`` JSON object (see :mod:`repro.obs.export`)."""
        from repro.obs.export import chrome_trace

        return chrome_trace(self.spans, fault_events=fault_events)

    def save_chrome(self, path, fault_events=()) -> None:
        """Write the Chrome trace JSON to ``path``."""
        from repro.obs.export import write_chrome_trace

        write_chrome_trace(path, self.spans, fault_events=fault_events)

    def to_dict(self) -> dict:
        """JSON-serializable summary (span count + category totals)."""
        return {
            "n_spans": len(self.spans),
            "n_dropped": self.n_dropped,
            "category_totals": self.category_totals(),
        }


class Tracer:
    """Span recorder shared by one cluster / backend.

    Args:
        capacity: ring-buffer size in spans; the oldest spans are
            dropped (and counted) once exceeded.

    Thread safety: :meth:`record` and :meth:`wall_span` may be called
    from host worker threads concurrently; the attribution context is
    thread-local, so one thread's ``context(...)`` never leaks into
    another's spans.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self._spans: deque = deque(maxlen=self.capacity)
        self._lock = threading.Lock()
        self._local = threading.local()
        self._lanes: dict[int, int] = {}
        self.n_recorded = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record(
        self,
        name: str | None,
        category: str,
        node: int,
        start: float,
        end: float,
        **args,
    ) -> None:
        """Record one span; context name / args fill in what's missing.

        ``name=None`` resolves to the innermost context's name (or the
        category itself when no context is active). Explicit ``args``
        win over context args on key collisions.
        """
        if category not in CATEGORIES:
            raise ValueError(
                f"unknown category {category!r}; supported: "
                f"{', '.join(CATEGORIES)}"
            )
        ctx_name, ctx_args = self._current_context()
        if name is None:
            name = ctx_name if ctx_name is not None else category
        merged = dict(ctx_args)
        merged.update(args)
        span = Span(
            name=name,
            category=category,
            node=int(node),
            start=float(start),
            end=float(end),
            args=tuple(sorted(merged.items())),
        )
        with self._lock:
            self._spans.append(span)
            self.n_recorded += 1

    @contextmanager
    def context(self, name: str | None = None, **args):
        """Push attribution for spans recorded inside the block.

        Contexts nest: inner names shadow outer ones, args merge
        (inner wins). The stack is per-thread.
        """
        stack = self._context_stack()
        stack.append((name, args))
        try:
            yield self
        finally:
            stack.pop()

    @contextmanager
    def wall_span(
        self,
        name: str,
        category: str = "computation",
        node: int | None = None,
        **args,
    ):
        """Record the wall-clock duration of the block as one span.

        ``node=None`` assigns a stable per-thread lane id (host
        backends: one lane per worker thread, like one lane per
        simulated node).
        """
        if node is None:
            node = self.thread_lane()
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.record(
                name, category, node, start, time.perf_counter(), **args
            )

    def thread_lane(self) -> int:
        """Stable small lane id for the calling host thread."""
        ident = threading.get_ident()
        with self._lock:
            lane = self._lanes.get(ident)
            if lane is None:
                lane = HOST_LANE_BASE + len(self._lanes)
                self._lanes[ident] = lane
        return lane

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    @property
    def n_dropped(self) -> int:
        """Spans evicted from the ring buffer since the last clear."""
        return max(0, self.n_recorded - len(self._spans))

    def spans(self) -> "tuple[Span, ...]":
        with self._lock:
            return tuple(self._spans)

    def trace(self) -> Trace:
        """Immutable snapshot of the current buffer."""
        with self._lock:
            return Trace(spans=tuple(self._spans), n_dropped=self.n_dropped)

    def category_totals(self) -> dict[str, float]:
        return _category_totals(self.spans())

    def clear(self) -> None:
        """Drop all recorded spans (lane assignments persist)."""
        with self._lock:
            self._spans.clear()
            self.n_recorded = 0

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _context_stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _current_context(self) -> "tuple[str | None, dict]":
        stack = getattr(self._local, "stack", None)
        if not stack:
            return None, {}
        name = None
        merged: dict = {}
        for ctx_name, ctx_args in stack:
            if ctx_name is not None:
                name = ctx_name
            merged.update(ctx_args)
        return name, merged


@contextmanager
def _noop_context(*_args, **_kwargs):
    yield None


def trace_context(tracer: "Tracer | None", name: str | None = None, **args):
    """``tracer.context(...)`` or a shared no-op when tracing is off.

    The helper producers use so the untraced hot path stays one branch
    plus one trivial context manager per instrumented call.
    """
    if tracer is None:
        return _noop_context()
    return tracer.context(name=name, **args)
