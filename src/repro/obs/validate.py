"""CLI validator for exported traces and metrics (the trace-smoke gate).

Usage::

    python -m repro.obs.validate trace.json [--metrics metrics.prom]

Exits non-zero (with a message) when the Chrome ``trace_event`` JSON
violates the format's structural invariants (non-monotonic timestamps,
unmatched ``B``/``E`` pairs, malformed events) or the Prometheus text
dump fails to parse.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.obs.export import validate_chrome_trace, validate_prometheus


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.obs.validate",
        description="validate Chrome trace_event JSON and Prometheus dumps",
    )
    parser.add_argument("trace", help="Chrome trace_event JSON file")
    parser.add_argument(
        "--metrics", default=None, help="Prometheus text dump to validate"
    )
    args = parser.parse_args(argv)

    with open(args.trace) as f:
        obj = json.load(f)
    try:
        counts = validate_chrome_trace(obj)
    except ValueError as exc:
        print(f"INVALID trace {args.trace}: {exc}", file=sys.stderr)
        return 1
    print(
        f"{args.trace}: valid trace_event JSON "
        f"({counts['B']} spans, {counts['i']} instants, "
        f"{counts['M']} metadata)"
    )
    if args.metrics is not None:
        with open(args.metrics) as f:
            text = f.read()
        try:
            samples = validate_prometheus(text)
        except ValueError as exc:
            print(
                f"INVALID metrics {args.metrics}: {exc}", file=sys.stderr
            )
            return 1
        total = sum(samples.values())
        print(
            f"{args.metrics}: valid Prometheus text "
            f"({len(samples)} families, {total} samples)"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
