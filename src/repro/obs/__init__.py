"""Structured observability: per-query tracing, metrics, exporters.

HARMONY's evaluation is an attribution exercise — Figures 2(b) and 8
decompose time into computation / communication / other, and Section 5
validates the cost model against measured per-node load — so the repro
needs instrumentation that can say *which* stage of *which* query on
*which* node the time went to. This package provides it:

- :class:`~repro.obs.trace.Tracer` — ring-buffered per-query spans
  (route, dispatch, per-(shard, slice) scan, prune, merge) over
  simulated time for the discrete-event backend and wall-clock time
  for the host backends. Near-zero overhead when not attached.
- :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges, and
  histograms (scans, retries / hedges / failovers, pruning ratios,
  queue waits, per-worker busy fractions) with Prometheus-style text
  and JSON exports.
- :mod:`~repro.obs.export` — Chrome ``trace_event`` JSON of the
  cluster timeline (one lane per simulated node), loadable in
  ``about:tracing`` / Perfetto, plus a schema validator.

Everything here is opt-in: with no tracer or registry attached, every
execution path is bit-identical to an untraced build.
"""

from repro.obs.export import (
    chrome_trace,
    validate_chrome_trace,
    validate_prometheus,
    write_chrome_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    report_metrics,
)
from repro.obs.trace import Span, Trace, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Trace",
    "Tracer",
    "chrome_trace",
    "report_metrics",
    "validate_chrome_trace",
    "validate_prometheus",
    "write_chrome_trace",
]
