"""Trace and metrics exporters plus format validators.

:func:`chrome_trace` turns recorded spans into the Chrome
``trace_event`` JSON format (the ``traceEvents`` array of matched
``B``/``E`` duration events plus ``M`` metadata naming one lane per
simulated node), which loads directly in ``about:tracing`` and
https://ui.perfetto.dev. Fault-schedule events become instant (``i``)
markers on the affected node's lane, so crashes and stragglers line up
visually with the retries and failovers they caused.

:func:`validate_chrome_trace` / :func:`validate_prometheus` are the
structural checks behind the ``trace-smoke`` CI job: timestamps
non-decreasing, every ``B`` matched by an ``E`` on the same lane with
stack discipline, every Prometheus line parseable.
"""

from __future__ import annotations

import json

from repro.obs.trace import Span

#: Everything shares one trace "process"; lanes are threads.
TRACE_PID = 1

#: Seconds → trace_event microseconds.
TIME_SCALE = 1e6


def lane_name(node: int) -> str:
    """Human name for a span lane (simulated node or host thread)."""
    if node == -1:
        return "client"
    if node == -2:
        return "client (merge)"
    if node >= 1000:
        return f"host thread {node - 1000}"
    return f"worker {node}"


def _lane_order(node: int) -> tuple:
    # Client lanes first, then workers ascending, then host threads.
    return (0 if node < 0 else 1, node if node >= 0 else -node)


def chrome_trace(
    spans,
    fault_events=(),
    process_name: str = "harmony",
) -> dict:
    """Build a Chrome ``trace_event`` JSON object from spans.

    Args:
        spans: iterable of :class:`~repro.obs.trace.Span`.
        fault_events: optional iterable of
            :class:`~repro.cluster.faults.FaultEvent` rendered as
            instant markers.
        process_name: display name of the single trace process.

    Returns:
        A dict with a ``traceEvents`` list, ready for ``json.dump``.
        Events are sorted by timestamp with ``E`` before ``B`` at ties,
        so zero-length gaps between adjacent spans stay well nested.
    """
    # Zero-length spans carry no visual information and would emit a
    # B/E pair whose E sorts before its own B at the shared timestamp.
    spans = [span for span in spans if span.end > span.start]
    nodes = sorted({span.node for span in spans}, key=_lane_order)
    tid_of = {node: i for i, node in enumerate(nodes)}
    events: list[dict] = [
        {
            "ph": "M",
            "pid": TRACE_PID,
            "tid": 0,
            "name": "process_name",
            "args": {"name": process_name},
        }
    ]
    for node in nodes:
        events.append(
            {
                "ph": "M",
                "pid": TRACE_PID,
                "tid": tid_of[node],
                "name": "thread_name",
                "args": {"name": lane_name(node)},
            }
        )
        events.append(
            {
                "ph": "M",
                "pid": TRACE_PID,
                "tid": tid_of[node],
                "name": "thread_sort_index",
                "args": {"sort_index": _lane_order(node)[1] * 2 + (
                    0 if node < 0 else 1
                )},
            }
        )
    duration: list[dict] = []
    for span in spans:
        tid = tid_of[span.node]
        begin = {
            "ph": "B",
            "pid": TRACE_PID,
            "tid": tid,
            "ts": span.start * TIME_SCALE,
            "name": span.name,
            "cat": span.category,
        }
        args = span.args_dict()
        if args:
            begin["args"] = args
        duration.append(begin)
        duration.append(
            {
                "ph": "E",
                "pid": TRACE_PID,
                "tid": tid,
                "ts": span.end * TIME_SCALE,
            }
        )
    for event in fault_events:
        tid = tid_of.get(getattr(event, "node", -1), 0)
        duration.append(
            {
                "ph": "i",
                "pid": TRACE_PID,
                "tid": tid,
                "ts": event.time * TIME_SCALE,
                "name": f"fault:{getattr(event, 'label', event.kind)}",
                "s": "g" if event.kind == "link" else "t",
            }
        )
    # Stable sort; E sorts before B at equal timestamps so back-to-back
    # spans on one lane close before the next opens.
    phase_rank = {"E": 0, "i": 1, "B": 2}
    duration.sort(key=lambda e: (e["ts"], phase_rank.get(e["ph"], 3)))
    events.extend(duration)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path, spans, fault_events=()) -> dict:
    """Serialize :func:`chrome_trace` output to ``path``; returns it."""
    obj = chrome_trace(spans, fault_events=fault_events)
    with open(path, "w") as f:
        json.dump(obj, f, allow_nan=False)
    return obj


def validate_chrome_trace(obj) -> dict:
    """Structurally validate a ``trace_event`` JSON object.

    Checks the invariants Perfetto / ``about:tracing`` rely on:

    - top level is a dict with a ``traceEvents`` list;
    - every event has integer ``pid`` / ``tid``, a known phase, and
      (for ``B`` / ``E`` / ``i``) a finite, non-negative ``ts``;
    - timestamps are non-decreasing in file order;
    - per (pid, tid) lane, ``B`` and ``E`` match with LIFO stack
      discipline and no lane ends mid-span.

    Returns summary counts; raises ``ValueError`` on any violation.
    """
    if not isinstance(obj, dict) or not isinstance(
        obj.get("traceEvents"), list
    ):
        raise ValueError("trace must be a dict with a 'traceEvents' list")
    open_stacks: dict[tuple, list[str]] = {}
    last_ts: float | None = None
    counts = {"B": 0, "E": 0, "i": 0, "M": 0}
    for position, event in enumerate(obj["traceEvents"]):
        if not isinstance(event, dict):
            raise ValueError(f"event {position} is not an object")
        phase = event.get("ph")
        if phase not in ("B", "E", "i", "M"):
            raise ValueError(
                f"event {position}: unsupported phase {phase!r}"
            )
        if not isinstance(event.get("pid"), int) or not isinstance(
            event.get("tid"), int
        ):
            raise ValueError(f"event {position}: pid/tid must be integers")
        counts[phase] += 1
        if phase == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts != ts or ts < 0:
            raise ValueError(
                f"event {position}: ts must be a finite number >= 0"
            )
        if last_ts is not None and ts < last_ts:
            raise ValueError(
                f"event {position}: ts {ts} < previous {last_ts} "
                "(events must be time-ordered)"
            )
        last_ts = float(ts)
        lane = (event["pid"], event["tid"])
        stack = open_stacks.setdefault(lane, [])
        if phase == "B":
            if not isinstance(event.get("name"), str) or not event["name"]:
                raise ValueError(f"event {position}: B events need a name")
            stack.append(event["name"])
        elif phase == "E":
            if not stack:
                raise ValueError(
                    f"event {position}: E with no open B on lane {lane}"
                )
            stack.pop()
    for lane, stack in open_stacks.items():
        if stack:
            raise ValueError(
                f"lane {lane} ends with {len(stack)} unclosed span(s): "
                f"{stack[-1]!r}"
            )
    if counts["B"] != counts["E"]:
        raise ValueError(
            f"unmatched B/E pairs: {counts['B']} B vs {counts['E']} E"
        )
    return counts


def validate_prometheus(text: str) -> dict:
    """Parse a Prometheus text exposition; raise ``ValueError`` if bad.

    A minimal parser covering what :meth:`MetricsRegistry.to_prometheus`
    emits (HELP / TYPE comments, labelled samples, histogram series).
    Returns ``{family: n_samples}``.
    """
    import re

    sample_re = re.compile(
        r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"
        r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\""
        r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})?"
        r" ([0-9eE.+-]+|\+Inf|-Inf|NaN)$"
    )
    typed: dict[str, str] = {}
    samples: dict[str, int] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in (
                "counter", "gauge", "histogram", "summary", "untyped"
            ):
                raise ValueError(f"line {lineno}: malformed TYPE comment")
            typed[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        match = sample_re.match(line)
        if match is None:
            raise ValueError(
                f"line {lineno}: unparseable sample {line!r}"
            )
        name = match.group(1)
        family = re.sub(r"_(bucket|sum|count)$", "", name)
        family = family if family in typed else name
        samples[family] = samples.get(family, 0) + 1
    for family in typed:
        if samples.get(family, 0) == 0:
            raise ValueError(f"family {family!r} declared but has no samples")
    return samples
