"""Exact nearest-neighbour ground truth for recall measurement."""

from __future__ import annotations

import numpy as np

from repro.distance.metrics import Metric
from repro.index.flat import FlatIndex


def exact_knn(
    base: np.ndarray,
    queries: np.ndarray,
    k: int,
    metric: "Metric | str" = Metric.L2,
) -> tuple[np.ndarray, np.ndarray]:
    """Exact top-``k`` neighbours of every query by brute force.

    Args:
        base: ``(n, dim)`` base vectors.
        queries: ``(nq, dim)`` query vectors.
        k: neighbours per query.

    Returns:
        ``(distances, ids)`` of shape ``(nq, k)``; same distance
        convention as :class:`repro.index.FlatIndex`.
    """
    base = np.atleast_2d(np.asarray(base, dtype=np.float32))
    index = FlatIndex(dim=base.shape[1], metric=metric)
    index.add(base)
    return index.search(queries, k=k)
