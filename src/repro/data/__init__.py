"""Datasets: synthetic generators, paper-dataset analogues, ground truth.

The paper evaluates on ten open-source datasets (Table 2). Those files
are not available offline, so this package generates *analogues* that
match each dataset's dimensionality and distributional character —
clustered image descriptors, strongly correlated time series, heavy-
tailed text embeddings — at a scaled-down size suitable for a laptop.
Pruning behaviour and load-balance effects depend on exactly those
properties, which is why the shapes of the paper's results survive the
substitution (see DESIGN.md).
"""

from repro.data.datasets import (
    DATASET_REGISTRY,
    Dataset,
    DatasetSpec,
    available_datasets,
    load_dataset,
)
from repro.data.ground_truth import exact_knn
from repro.data.loaders import read_fvecs, read_ivecs, write_fvecs, write_ivecs
from repro.data.synthetic import (
    correlated_walk,
    gaussian_blobs,
    heavy_tailed_embeddings,
    perturbed_queries,
    uniform_gaussian,
)

__all__ = [
    "DATASET_REGISTRY",
    "Dataset",
    "DatasetSpec",
    "available_datasets",
    "correlated_walk",
    "exact_knn",
    "gaussian_blobs",
    "heavy_tailed_embeddings",
    "load_dataset",
    "perturbed_queries",
    "read_fvecs",
    "read_ivecs",
    "uniform_gaussian",
    "write_fvecs",
    "write_ivecs",
]
