"""Dataset statistics that predict HARMONY's behaviour.

The paper observes that pruning rates "vary significantly across
different datasets ... mainly due to the differences in dataset
distributions" (Section 6.3.3) without quantifying which property
drives it. This module measures the three that do:

- **leading variance share** — the fraction of total variance carried
  by the first dimension slice; high values (time series) mean early
  partial distances predict the final distance, so pruning bites early;
- **distance contrast** — the ratio between a typical candidate's
  distance and the k-th nearest neighbour's; high contrast gives the
  top-K threshold room to prune;
- **cluster imbalance** — the coefficient of variation of k-means
  cluster populations; dominant clusters cap vector partitioning's
  balance and throughput (the GloVe analogues here).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distance.kernels import pairwise_squared_l2
from repro.distance.partial import DimensionSlices
from repro.index.ivf import IVFFlatIndex


@dataclass(frozen=True)
class DatasetProfile:
    """Measured distribution properties of a vector dataset.

    Attributes:
        leading_variance_share: variance fraction in the first of
            ``n_slices`` dimension slices (1/n_slices = flat profile).
        distance_contrast: median candidate distance divided by the
            median k-th-NN distance over a query sample (>1; higher is
            easier to prune).
        cluster_imbalance: CV of k-means cluster sizes.
    """

    leading_variance_share: float
    distance_contrast: float
    cluster_imbalance: float


def leading_variance_share(
    data: np.ndarray, n_slices: int = 4
) -> float:
    """Variance fraction carried by the first dimension slice."""
    data = np.atleast_2d(np.asarray(data, dtype=np.float64))
    if data.shape[1] < n_slices:
        raise ValueError(
            f"need at least {n_slices} dimensions, got {data.shape[1]}"
        )
    variances = data.var(axis=0)
    total = float(variances.sum())
    if total <= 0:
        return 1.0 / n_slices
    slices = DimensionSlices.even(data.shape[1], n_slices)
    start, stop = slices.slice_range(0)
    return float(variances[start:stop].sum() / total)


def distance_contrast(
    base: np.ndarray,
    queries: np.ndarray,
    k: int = 10,
    sample: int = 512,
    seed: int = 0,
) -> float:
    """Median candidate distance over median k-NN distance.

    Computed against a base sample for tractability; values near 1 mean
    distances concentrate (hard to prune), large values mean the k-th
    neighbour is far closer than the crowd (easy to prune).
    """
    base = np.atleast_2d(np.asarray(base, dtype=np.float32))
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
    rng = np.random.default_rng(seed)
    if base.shape[0] > sample:
        base = base[rng.choice(base.shape[0], size=sample, replace=False)]
    k = min(k, base.shape[0])
    distances = pairwise_squared_l2(queries, base)
    kth = np.partition(distances, k - 1, axis=1)[:, k - 1]
    typical = np.median(distances, axis=1)
    kth = np.maximum(kth, 1e-12)
    return float(np.median(typical / kth))


def cluster_imbalance(index: IVFFlatIndex) -> float:
    """Coefficient of variation of the index's inverted-list sizes."""
    sizes = index.list_sizes().astype(np.float64)
    mean = float(sizes.mean())
    if mean <= 0:
        return 0.0
    return float(sizes.std() / mean)


def profile_dataset(
    base: np.ndarray,
    queries: np.ndarray,
    index: IVFFlatIndex,
    n_slices: int = 4,
    k: int = 10,
) -> DatasetProfile:
    """Measure all three behaviour-predicting properties."""
    return DatasetProfile(
        leading_variance_share=leading_variance_share(base, n_slices),
        distance_contrast=distance_contrast(base, queries, k=k),
        cluster_imbalance=cluster_imbalance(index),
    )
