"""Registry of paper-dataset analogues (paper Table 2).

Each entry maps one of the paper's ten datasets to a synthetic
generator with the same dimensionality and a distribution matching its
data type. Sizes are scaled down (documented per entry) so experiments
complete on a single machine; simulated time scales linearly with size,
so relative results are unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.data.synthetic import (
    correlated_walk,
    gaussian_blobs,
    heavy_tailed_embeddings,
)

Generator = Callable[[int, int, int], np.ndarray]


@dataclass(frozen=True)
class DatasetSpec:
    """Description of one paper dataset and its synthetic analogue.

    Attributes:
        name: registry key (lower-case, no spaces).
        paper_name: name as printed in the paper's Table 2.
        paper_size / paper_dim / paper_query_size: the original stats.
        data_type: the paper's "Data Type" column.
        dim: dimensionality used here (always equals ``paper_dim``).
        default_size / default_query_size: scaled sizes used by default.
        generator: callable ``(n, dim, seed) -> (n, dim) float32``.
        query_noise: perturbation scale for query generation.
    """

    name: str
    paper_name: str
    paper_size: int
    paper_dim: int
    paper_query_size: int
    data_type: str
    default_size: int
    default_query_size: int
    generator: Generator
    query_noise: float = 0.1
    notes: str = ""


@dataclass(frozen=True)
class Dataset:
    """A materialized dataset: base vectors plus query vectors."""

    spec: DatasetSpec
    base: np.ndarray
    queries: np.ndarray
    seed: int = field(default=0)

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def dim(self) -> int:
        return int(self.base.shape[1])

    @property
    def size(self) -> int:
        return int(self.base.shape[0])

    @property
    def n_queries(self) -> int:
        return int(self.queries.shape[0])


def _clustered(n: int, dim: int, seed: int) -> np.ndarray:
    return gaussian_blobs(n, dim, n_blobs=48, cluster_std=0.35, seed=seed)


def _series(n: int, dim: int, seed: int) -> np.ndarray:
    return correlated_walk(
        n,
        dim,
        smoothness=0.97,
        envelope=2.0,
        n_classes=48,
        noise_scale=0.2,
        seed=seed,
    )


def _text(n: int, dim: int, seed: int) -> np.ndarray:
    return heavy_tailed_embeddings(n, dim, seed=seed)


_SPECS = [
    DatasetSpec(
        name="starlightcurves",
        paper_name="Star Light Curves",
        paper_size=823_600,
        paper_dim=1024,
        paper_query_size=1_000,
        data_type="Time Series",
        default_size=8_000,
        default_query_size=100,
        generator=_series,
        notes="scaled 823.6k -> 8k; AR(1) trajectories, smoothness 0.97",
    ),
    DatasetSpec(
        name="msong",
        paper_name="Msong",
        paper_size=992_272,
        paper_dim=420,
        paper_query_size=1_000,
        data_type="Audio",
        default_size=12_000,
        default_query_size=150,
        generator=lambda n, dim, seed: correlated_walk(
            n, dim, smoothness=0.9, seed=seed
        ),
        notes="scaled 992k -> 12k; audio features modeled as smooth series",
    ),
    DatasetSpec(
        name="sift1m",
        paper_name="Sift1M",
        paper_size=1_000_000,
        paper_dim=128,
        paper_query_size=10_000,
        data_type="Image",
        default_size=20_000,
        default_query_size=200,
        generator=_clustered,
        notes="scaled 1M -> 20k; clustered SIFT-like blobs",
    ),
    DatasetSpec(
        name="deep1m",
        paper_name="Deep1M",
        paper_size=1_000_000,
        paper_dim=256,
        paper_query_size=1_000,
        data_type="Image",
        default_size=16_000,
        default_query_size=150,
        generator=lambda n, dim, seed: gaussian_blobs(
            n, dim, n_blobs=64, cluster_std=0.55, seed=seed
        ),
        notes="scaled 1M -> 16k; CNN-descriptor-like overlapping blobs",
    ),
    DatasetSpec(
        name="word2vec",
        paper_name="Word2vec",
        paper_size=1_000_000,
        paper_dim=300,
        paper_query_size=1_000,
        data_type="Word Vectors",
        default_size=14_000,
        default_query_size=150,
        generator=lambda n, dim, seed: gaussian_blobs(
            n, dim, n_blobs=32, cluster_std=0.6, seed=seed
        ),
        notes="scaled 1M -> 14k; more clusterable than the GloVe "
        "analogues, hence the higher pruning rates (paper Table 3)",
    ),
    DatasetSpec(
        name="handoutlines",
        paper_name="Hand Outlines",
        paper_size=1_000_000,
        paper_dim=2709,
        paper_query_size=370,
        data_type="Time Series",
        default_size=4_000,
        default_query_size=80,
        generator=_series,
        notes="scaled 1M -> 4k (2709 dims); AR(1) trajectories",
    ),
    DatasetSpec(
        name="glove1.2m",
        paper_name="Glove1.2m",
        paper_size=1_193_514,
        paper_dim=200,
        paper_query_size=1_000,
        data_type="Text",
        default_size=16_000,
        default_query_size=150,
        generator=_text,
        notes="scaled 1.2M -> 16k; heavy-tailed, hardest to prune",
    ),
    DatasetSpec(
        name="glove2.2m",
        paper_name="Glove2.2m",
        paper_size=2_196_017,
        paper_dim=300,
        paper_query_size=1_000,
        data_type="Text",
        default_size=24_000,
        default_query_size=150,
        generator=_text,
        notes="scaled 2.2M -> 24k; heavy-tailed, hardest to prune",
    ),
    DatasetSpec(
        name="spacev1b",
        paper_name="SpaceV1B",
        paper_size=1_000_000_000,
        paper_dim=100,
        paper_query_size=10_000,
        data_type="Text",
        default_size=40_000,
        default_query_size=200,
        generator=_text,
        notes="scaled 1B -> 40k; run on 16 simulated nodes like the paper",
    ),
    DatasetSpec(
        name="sift1b",
        paper_name="Sift1B",
        paper_size=1_000_000_000,
        paper_dim=128,
        paper_query_size=10_000,
        data_type="Image",
        default_size=40_000,
        default_query_size=200,
        generator=_clustered,
        notes="scaled 1B -> 40k; run on 16 simulated nodes like the paper",
    ),
]

DATASET_REGISTRY: dict[str, DatasetSpec] = {spec.name: spec for spec in _SPECS}

#: The eight "relatively small" datasets used for the 4-node experiments
#: (the paper excludes SpaceV1B/Sift1B from those, Section 6.2.2).
SMALL_DATASETS = [
    "starlightcurves",
    "msong",
    "sift1m",
    "deep1m",
    "word2vec",
    "handoutlines",
    "glove1.2m",
    "glove2.2m",
]


def available_datasets() -> list[str]:
    """Registry keys in the paper's Table 2 order."""
    return [spec.name for spec in _SPECS]


def load_dataset(
    name: str,
    size: int | None = None,
    n_queries: int | None = None,
    seed: int = 0,
) -> Dataset:
    """Materialize a dataset analogue.

    Args:
        name: registry key (see :func:`available_datasets`); matching is
            case-insensitive and ignores spaces.
        size: base-vector count override (defaults to the spec's scaled
            default).
        n_queries: query count override.
        seed: generator seed; base and queries use derived sub-seeds.

    Raises:
        KeyError: for unknown dataset names.
    """
    key = name.lower().replace(" ", "")
    if key not in DATASET_REGISTRY:
        known = ", ".join(available_datasets())
        raise KeyError(f"unknown dataset {name!r}; available: {known}")
    spec = DATASET_REGISTRY[key]
    n = size if size is not None else spec.default_size
    nq = n_queries if n_queries is not None else spec.default_query_size
    if n <= 0 or nq <= 0:
        raise ValueError("size and n_queries must be positive")
    # Base and query vectors come from one draw of the generator so
    # queries follow exactly the base distribution (as in the paper's
    # benchmark suites) without being near-duplicates of base vectors.
    combined = spec.generator(n + nq, spec.paper_dim, seed)
    base = combined[:n]
    queries = combined[n:]
    return Dataset(spec=spec, base=base, queries=queries, seed=seed)
