"""Readers/writers for the classic ``.fvecs`` / ``.ivecs`` formats.

The paper's datasets (SIFT, Deep, GloVe, ...) ship in these formats:
each row is a little-endian int32 dimensionality followed by ``dim``
values (float32 for fvecs, int32 for ivecs). Provided so users with the
real files can run the benchmarks on them directly.
"""

from __future__ import annotations

import os

import numpy as np


def _read_vecs(path: "str | os.PathLike", dtype: np.dtype) -> np.ndarray:
    raw = np.fromfile(path, dtype=np.int32)
    if raw.size == 0:
        return np.empty((0, 0), dtype=dtype)
    dim = int(raw[0])
    if dim <= 0:
        raise ValueError(f"{path}: invalid leading dimension {dim}")
    row_width = dim + 1
    if raw.size % row_width != 0:
        raise ValueError(
            f"{path}: file size is not a multiple of row width {row_width}"
        )
    rows = raw.reshape(-1, row_width)
    if not np.all(rows[:, 0] == dim):
        raise ValueError(f"{path}: inconsistent per-row dimensions")
    return rows[:, 1:].view(np.float32 if dtype == np.float32 else np.int32).astype(
        dtype, copy=True
    )


def read_fvecs(path: "str | os.PathLike") -> np.ndarray:
    """Read an ``.fvecs`` file into an ``(n, dim)`` float32 array."""
    return _read_vecs(path, np.dtype(np.float32))


def read_ivecs(path: "str | os.PathLike") -> np.ndarray:
    """Read an ``.ivecs`` file into an ``(n, dim)`` int32 array."""
    return _read_vecs(path, np.dtype(np.int32))


def _write_vecs(path: "str | os.PathLike", data: np.ndarray, kind: str) -> None:
    data = np.atleast_2d(data)
    n, dim = data.shape
    if dim == 0:
        raise ValueError("cannot write zero-dimensional vectors")
    dims = np.full((n, 1), dim, dtype=np.int32)
    if kind == "f":
        payload = data.astype(np.float32).view(np.int32)
    else:
        payload = data.astype(np.int32)
    np.hstack([dims, payload]).astype(np.int32).tofile(path)


def write_fvecs(path: "str | os.PathLike", data: np.ndarray) -> None:
    """Write a float array as ``.fvecs``."""
    _write_vecs(path, data, "f")


def write_ivecs(path: "str | os.PathLike", data: np.ndarray) -> None:
    """Write an int array as ``.ivecs``."""
    _write_vecs(path, data, "i")
