"""Synthetic vector generators mimicking the paper's dataset families.

Three structural families drive HARMONY's behaviour:

- *clustered* data (SIFT/Deep image descriptors): well-separated k-means
  clusters, moderate per-dimension correlation;
- *correlated series* (StarLightCurves, HandOutlines): smooth
  trajectories whose leading dimensions carry most of the variance,
  which makes dimension-level pruning extremely effective;
- *heavy-tailed embeddings* (GloVe, word2vec): anisotropic, weakly
  clustered directions with heavy-tailed norms, the hardest case for
  pruning (matching the low Glove pruning ratios in the paper's
  Table 3).

All generators are deterministic in ``seed`` and return float32 arrays.
"""

from __future__ import annotations

import numpy as np


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def uniform_gaussian(n: int, dim: int, seed: int = 0) -> np.ndarray:
    """IID standard-normal vectors (paper Section 6.5.1's Gaussian data)."""
    if n <= 0 or dim <= 0:
        raise ValueError(f"n and dim must be positive, got n={n}, dim={dim}")
    return _rng(seed).standard_normal((n, dim)).astype(np.float32)


def gaussian_blobs(
    n: int,
    dim: int,
    n_blobs: int = 32,
    cluster_std: float = 0.5,
    center_spread: float = 1.0,
    std_jitter: float = 0.4,
    seed: int = 0,
) -> np.ndarray:
    """Clustered vectors: ``n_blobs`` Gaussian blobs with random centers.

    Blob populations are drawn from a Dirichlet distribution so cluster
    sizes are naturally uneven, and per-blob standard deviations are
    log-normally jittered so inter-point distances form a continuum
    rather than a tight bimodal split — matching the gradual pruning
    behaviour of real descriptor datasets.
    """
    if n <= 0 or dim <= 0 or n_blobs <= 0:
        raise ValueError("n, dim and n_blobs must be positive")
    if std_jitter < 0.0:
        raise ValueError(f"std_jitter must be non-negative, got {std_jitter}")
    rng = _rng(seed)
    centers = rng.standard_normal((n_blobs, dim)) * center_spread
    stds = cluster_std * rng.lognormal(mean=0.0, sigma=std_jitter, size=n_blobs)
    weights = rng.dirichlet(np.full(n_blobs, 2.0))
    labels = rng.choice(n_blobs, size=n, p=weights)
    points = centers[labels] + (
        rng.standard_normal((n, dim)) * stds[labels, None]
    )
    return points.astype(np.float32)


def correlated_walk(
    n: int,
    dim: int,
    smoothness: float = 0.95,
    envelope: float = 3.0,
    n_classes: int = 32,
    noise_scale: float = 0.35,
    seed: int = 0,
) -> np.ndarray:
    """Time-series-like vectors with strong inter-dimension correlation.

    Each vector is an AR(1) trajectory ``x[t] = smoothness * x[t-1] +
    noise`` scaled by a decaying amplitude envelope. Phase-aligned
    series datasets (UCR StarLightCurves, HandOutlines) concentrate
    their discriminative structure in the leading portion of the
    series; the envelope reproduces that, which is what makes partial
    distances over leading slices predict the full distance well and
    pruning ratios very high (Table 3).

    Series datasets like the UCR archive's are *classed*: every sample
    is a deformation of one of a few dozen prototype curves. Samples
    here are ``prototype[class] + noise_scale * AR(1) noise``, which
    yields the clusterable structure k-means exploits and the tight
    top-K thresholds behind the paper's very high series pruning rates.

    Args:
        n / dim: output shape.
        smoothness: AR(1) coefficient in ``[0, 1)``.
        envelope: variance-concentration strength; amplitude decays as
            ``exp(-envelope * t / dim)`` (0 disables the envelope).
        n_classes: prototype curve count.
        noise_scale: per-sample deformation relative to prototypes.
        seed: RNG seed.
    """
    if n <= 0 or dim <= 0:
        raise ValueError(f"n and dim must be positive, got n={n}, dim={dim}")
    if not 0.0 <= smoothness < 1.0:
        raise ValueError(f"smoothness must be in [0, 1), got {smoothness}")
    if envelope < 0.0:
        raise ValueError(f"envelope must be non-negative, got {envelope}")
    if n_classes <= 0 or noise_scale < 0.0:
        raise ValueError("n_classes must be positive, noise_scale >= 0")
    rng = _rng(seed)

    def ar1_paths(rows: int, scale: float) -> np.ndarray:
        noise = rng.standard_normal((rows, dim))
        path = np.empty((rows, dim), dtype=np.float64)
        path[:, 0] = rng.standard_normal(rows) * 3.0
        for t in range(1, dim):
            path[:, t] = smoothness * path[:, t - 1] + noise[:, t]
        return path * scale

    prototypes = ar1_paths(n_classes, 1.0)
    labels = rng.integers(n_classes, size=n)
    out = prototypes[labels] + ar1_paths(n, noise_scale)
    amplitude = np.exp(-envelope * np.arange(dim) / dim)
    out *= amplitude
    return out.astype(np.float32)


def heavy_tailed_embeddings(
    n: int,
    dim: int,
    n_directions: int = 96,
    tail: float = 0.3,
    cluster_std: float = 0.9,
    seed: int = 0,
) -> np.ndarray:
    """Text-embedding-like vectors: diffuse clusters, heavy-tailed norms.

    Word/text embedding spaces contain many weakly separated concept
    clusters whose vectors vary widely in norm (frequency effects).
    This generator layers log-normal magnitudes over a many-blob,
    high-overlap mixture. Distances concentrate, so early partial
    distances discriminate poorly — reproducing the low pruning ratios
    of the GloVe-family datasets in the paper's Table 3.

    Args:
        n / dim: output shape.
        n_directions: number of concept clusters.
        tail: log-normal sigma of the per-vector magnitude.
        cluster_std: within-cluster spread (overlap increases with it).
        seed: RNG seed.
    """
    if n <= 0 or dim <= 0 or n_directions <= 0:
        raise ValueError("n, dim and n_directions must be positive")
    if tail < 0.0:
        raise ValueError(f"tail must be non-negative, got {tail}")
    signal = gaussian_blobs(
        n,
        dim,
        n_blobs=n_directions,
        cluster_std=cluster_std,
        std_jitter=0.3,
        seed=seed,
    )
    rng = _rng(seed + 7919)
    magnitudes = rng.lognormal(mean=0.0, sigma=tail, size=(n, 1))
    return (signal * magnitudes).astype(np.float32)


def perturbed_queries(
    base: np.ndarray,
    n_queries: int,
    noise_scale: float = 0.1,
    seed: int = 0,
) -> np.ndarray:
    """Queries drawn as noisy copies of random base vectors.

    Mirrors how benchmark query sets relate to their base sets: queries
    land near the data manifold, so nearest neighbours are meaningful.
    """
    base = np.asarray(base, dtype=np.float32)
    if base.ndim != 2 or base.shape[0] == 0:
        raise ValueError("base must be a non-empty (n, dim) array")
    if n_queries <= 0:
        raise ValueError(f"n_queries must be positive, got {n_queries}")
    rng = _rng(seed)
    picks = rng.choice(base.shape[0], size=n_queries, replace=True)
    scale = float(np.std(base)) * noise_scale
    noise = rng.standard_normal((n_queries, base.shape[1])) * scale
    return (base[picks] + noise).astype(np.float32)
