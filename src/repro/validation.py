"""Deployment validation utilities.

The library's central guarantee is that distributed execution —
whatever the partition grid, machine count, pruning, scheduling, or
execution backend — returns exactly what a plain serial scan would.
These helpers let users *check* that guarantee on their own deployment
and data, e.g. after an upgrade or a custom configuration.

The reference oracle is :class:`~repro.core.executor.serial.SerialBackend`
with pruning disabled: a plain loop that accumulates every slice of
every candidate, with no early stop, no threads, and no scheduling
freedom. (Its own agreement with ``IVFFlatIndex.search`` is covered by
the test suite, so the oracle is anchored to the single-node scan.)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.database import HarmonyDB
from repro.core.executor.serial import SerialBackend


@dataclass(frozen=True)
class ExactnessReport:
    """Outcome of an exactness check.

    Attributes:
        exact: True when every returned id and distance matched the
            serial reference scan.
        n_queries: queries checked.
        mismatched_queries: indices of queries whose result rows
            differ (empty when exact).
    """

    exact: bool
    n_queries: int
    mismatched_queries: tuple[int, ...]

    def __bool__(self) -> bool:
        return self.exact


def check_exactness(
    db: HarmonyDB,
    queries: np.ndarray,
    k: int = 10,
    nprobe: int | None = None,
    filter_labels: "np.ndarray | list[int] | None" = None,
) -> ExactnessReport:
    """Verify a deployment against the serial reference backend.

    Runs the deployment's configured engine and an unpruned
    :class:`SerialBackend` over the same index and plan with identical
    parameters, and compares ids and distances row by row.

    Args:
        db: a built deployment.
        queries: query batch to verify with.
        k / nprobe: search parameters (nprobe defaults to the config's).
        filter_labels: optional metadata label filter applied to both
            executions.

    Raises:
        RuntimeError: if ``db`` is not built.
    """
    if not db.is_built:
        raise RuntimeError("build() must be called before validation")
    nprobe = nprobe if nprobe is not None else db.config.nprobe
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
    result, _ = db.search(
        queries, k=k, nprobe=nprobe, filter_labels=filter_labels
    )
    oracle = SerialBackend(
        db.index, plan=db.plan, prewarm_size=0, enable_pruning=False
    )
    reference = oracle.search(
        queries, k=k, nprobe=nprobe, filter_labels=filter_labels
    )
    id_rows = np.all(result.ids == reference.ids, axis=1)
    dist_rows = np.all(
        np.isclose(
            result.distances, reference.distances, rtol=1e-9, atol=1e-12
        )
        | (np.isinf(result.distances) & np.isinf(reference.distances)),
        axis=1,
    )
    good = id_rows & dist_rows
    mismatched = tuple(int(i) for i in np.flatnonzero(~good))
    return ExactnessReport(
        exact=not mismatched,
        n_queries=queries.shape[0],
        mismatched_queries=mismatched,
    )
