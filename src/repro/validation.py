"""Deployment validation utilities.

The library's central guarantee is that distributed execution —
whatever the partition grid, machine count, pruning, or scheduling —
returns exactly what a single-node IVF scan would. These helpers let
users *check* that guarantee on their own deployment and data, e.g.
after an upgrade or a custom configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.database import HarmonyDB


@dataclass(frozen=True)
class ExactnessReport:
    """Outcome of an exactness check.

    Attributes:
        exact: True when every returned id and distance matched the
            single-node reference scan.
        n_queries: queries checked.
        mismatched_queries: indices of queries whose result rows
            differ (empty when exact).
    """

    exact: bool
    n_queries: int
    mismatched_queries: tuple[int, ...]

    def __bool__(self) -> bool:
        return self.exact


def check_exactness(
    db: HarmonyDB,
    queries: np.ndarray,
    k: int = 10,
    nprobe: int | None = None,
) -> ExactnessReport:
    """Verify a deployment against the single-node reference scan.

    Runs the distributed engine and a plain ``IVFFlatIndex.search``
    with identical parameters and compares ids and distances row by
    row.

    Args:
        db: a built deployment.
        queries: query batch to verify with.
        k / nprobe: search parameters (nprobe defaults to the config's).

    Raises:
        RuntimeError: if ``db`` is not built.
    """
    if not db.is_built:
        raise RuntimeError("build() must be called before validation")
    nprobe = nprobe if nprobe is not None else db.config.nprobe
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
    result, _ = db.search(queries, k=k, nprobe=nprobe)
    ref_dist, ref_ids = db.index.search(queries, k=k, nprobe=nprobe)
    id_rows = np.all(result.ids == ref_ids, axis=1)
    dist_rows = np.all(
        np.isclose(result.distances, ref_dist, rtol=1e-9, atol=1e-12)
        | (np.isinf(result.distances) & np.isinf(ref_dist)),
        axis=1,
    )
    good = id_rows & dist_rows
    mismatched = tuple(int(i) for i in np.flatnonzero(~good))
    return ExactnessReport(
        exact=not mismatched,
        n_queries=queries.shape[0],
        mismatched_queries=mismatched,
    )
