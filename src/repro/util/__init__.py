"""Small shared utilities with no dependency on the core engine."""

from repro.util.growable import GrowableArray
from repro.util.retry import RetryPolicy, backoff_delay

__all__ = ["GrowableArray", "RetryPolicy", "backoff_delay"]
