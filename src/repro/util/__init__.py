"""Small shared utilities with no dependency on the core engine."""

from repro.util.retry import RetryPolicy, backoff_delay

__all__ = ["RetryPolicy", "backoff_delay"]
