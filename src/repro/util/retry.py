"""Exponential backoff with deterministic jitter.

One retry policy shared by the two recovery paths that wait things
out: the simulated pipeline's crashed-worker retries
(:meth:`repro.core.pipeline.PipelineEngine._robust_compute`) and the
host supervisor's straggler watchdog
(:class:`repro.core.executor.process.ProcessBackend`). Both need the
same shape — attempt ``i`` waits ``base * factor**i``, optionally
capped and jittered — and both need **replayable** delays: a fault
timeline must replay byte-identically from its seed, so the jitter is
a pure function of ``(seed, key, attempt)``, never of a global RNG or
the wall clock.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def backoff_delay(
    attempt: int,
    base: float,
    factor: float = 2.0,
    max_delay: float | None = None,
    jitter: float = 0.0,
    seed: int = 0,
    key: int = 0,
) -> float:
    """Delay (seconds) before retry ``attempt`` (0-based).

    ``base * factor**attempt``, capped at ``max_delay`` when given,
    then stretched by a deterministic jitter drawn uniformly from
    ``[0, jitter]`` (as a *fraction* of the delay). The jitter stream
    is seeded from ``(seed, key, attempt)`` so identical inputs always
    produce identical delays — replayable chaos, not randomness.

    Args:
        attempt: 0-based retry ordinal.
        base: first retry's delay.
        factor: multiplicative growth per attempt.
        max_delay: optional cap applied before jitter.
        jitter: max fractional stretch (0 disables; 0.5 means up to
            +50%).
        seed: policy-level seed.
        key: per-call-site discriminator (e.g. task or worker id) so
            concurrent retriers don't thunder in lockstep.
    """
    if attempt < 0:
        raise ValueError(f"attempt must be non-negative, got {attempt}")
    if base <= 0:
        raise ValueError(f"base must be positive, got {base}")
    if factor < 1.0:
        raise ValueError(f"factor must be >= 1, got {factor}")
    if jitter < 0:
        raise ValueError(f"jitter must be non-negative, got {jitter}")
    delay = base * factor**attempt
    if max_delay is not None:
        delay = min(delay, max_delay)
    if jitter > 0.0:
        rng = np.random.default_rng(
            np.random.SeedSequence((int(seed), int(key), int(attempt)))
        )
        delay *= 1.0 + float(rng.uniform(0.0, jitter))
    return float(delay)


@dataclass(frozen=True)
class RetryPolicy:
    """A bounded exponential-backoff schedule.

    Attributes:
        base: delay before the first retry.
        factor: multiplicative growth per attempt.
        max_attempts: retries after the initial try (0 = never retry).
        max_delay: optional per-attempt cap (pre-jitter).
        jitter: max fractional stretch per delay (deterministic; see
            :func:`backoff_delay`).
        seed: seed of the jitter stream.
    """

    base: float
    factor: float = 2.0
    max_attempts: int = 3
    max_delay: float | None = None
    jitter: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.base <= 0:
            raise ValueError(f"base must be positive, got {self.base}")
        if self.factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {self.factor}")
        if self.max_attempts < 0:
            raise ValueError(
                f"max_attempts must be non-negative, got {self.max_attempts}"
            )
        if self.max_delay is not None and self.max_delay <= 0:
            raise ValueError(
                f"max_delay must be positive or None, got {self.max_delay}"
            )
        if self.jitter < 0:
            raise ValueError(
                f"jitter must be non-negative, got {self.jitter}"
            )

    def delay(self, attempt: int, key: int = 0) -> float:
        """Backoff before retry ``attempt`` (0-based)."""
        return backoff_delay(
            attempt,
            self.base,
            factor=self.factor,
            max_delay=self.max_delay,
            jitter=self.jitter,
            seed=self.seed,
            key=key,
        )

    def delays(self, key: int = 0) -> "list[float]":
        """Every delay of the schedule, in order."""
        return [self.delay(i, key=key) for i in range(self.max_attempts)]

    def total_delay(self, key: int = 0) -> float:
        """Summed wait across the whole schedule (give-up horizon)."""
        return float(sum(self.delays(key=key)))
