"""Amortized-doubling append buffers for streaming mutation paths.

``np.vstack``/``np.concatenate`` on every ``add`` copies the whole
array each call, so N small batches cost O(N^2) bytes moved — the
quadratic-append pattern that throttles write-heavy workloads. A
:class:`GrowableArray` keeps spare capacity and doubles it on
exhaustion, so N appended rows cost O(N) bytes amortized. The
``bytes_copied`` counter exists so regression tests can pin the
amortized bound instead of timing-based heuristics.
"""

from __future__ import annotations

import numpy as np

_MIN_CAPACITY = 8


class GrowableArray:
    """An append-only numpy buffer with amortized-doubling growth.

    The logical contents are the first ``len(self)`` rows of an
    over-allocated backing buffer; :attr:`view` exposes them as a
    zero-copy slice. Appends write into spare capacity and only
    reallocate (doubling) when it runs out, so the total bytes moved
    over any append sequence is linear in the final size.

    Args:
        row_shape: trailing shape of one row; ``()`` for 1-D buffers,
            ``(dim,)`` for matrices.
        dtype: numpy dtype of the elements.
        initial: optional array to adopt as the starting contents
            (copied once, sized exactly).
    """

    __slots__ = ("_buf", "_n", "bytes_copied")

    def __init__(
        self,
        row_shape: tuple[int, ...] = (),
        dtype: "np.dtype | type" = np.float32,
        initial: np.ndarray | None = None,
    ) -> None:
        #: Bytes moved by reallocation copies (not by the appends
        #: themselves); grows O(n) over n appended rows.
        self.bytes_copied = 0
        if initial is not None:
            initial = np.ascontiguousarray(initial, dtype=dtype)
            if initial.shape[1:] != tuple(row_shape):
                raise ValueError(
                    f"initial rows have shape {initial.shape[1:]}, "
                    f"expected {tuple(row_shape)}"
                )
            self._buf = initial.copy()
            self._n = initial.shape[0]
        else:
            self._buf = np.empty((0, *row_shape), dtype=dtype)
            self._n = 0

    @classmethod
    def adopt(cls, array: np.ndarray) -> "GrowableArray":
        """Copy an existing array in as the initial contents."""
        array = np.asarray(array)
        return cls(row_shape=array.shape[1:], dtype=array.dtype, initial=array)

    @classmethod
    def wrap(cls, array: np.ndarray) -> "GrowableArray":
        """Alias an existing array as the full contents, zero-copy.

        Used to present externally-owned storage (e.g. shared-memory
        views) through the growable interface. The wrapped array is at
        exact capacity, so the first ``append`` reallocates into
        private memory and leaves it untouched.
        """
        array = np.asarray(array)
        grown = cls(row_shape=array.shape[1:], dtype=array.dtype)
        grown._buf = array
        grown._n = array.shape[0]
        return grown

    def __len__(self) -> int:
        return self._n

    @property
    def view(self) -> np.ndarray:
        """Zero-copy view of the logical contents (first ``len`` rows).

        The view aliases the backing buffer: in-place writes are seen
        by the owner, but it goes stale at the next reallocation —
        re-read :attr:`view` after any ``append``.
        """
        return self._buf[: self._n]

    @property
    def capacity(self) -> int:
        return self._buf.shape[0]

    @property
    def nbytes(self) -> int:
        """Bytes of the *logical* contents (capacity slack excluded)."""
        return int(self._n * self._buf.dtype.itemsize * _row_elems(self._buf))

    def append(self, block: np.ndarray) -> None:
        """Append ``block`` rows (or one scalar per row for 1-D buffers)."""
        block = np.asarray(block, dtype=self._buf.dtype)
        if block.ndim == self._buf.ndim - 1:
            block = block[None, ...]
        if block.shape[1:] != self._buf.shape[1:]:
            raise ValueError(
                f"appended rows have shape {block.shape[1:]}, "
                f"expected {self._buf.shape[1:]}"
            )
        needed = self._n + block.shape[0]
        if needed > self._buf.shape[0]:
            self._grow(needed)
        self._buf[self._n : needed] = block
        self._n = needed

    def _grow(self, needed: int) -> None:
        new_cap = max(needed, 2 * self._buf.shape[0], _MIN_CAPACITY)
        grown = np.empty(
            (new_cap, *self._buf.shape[1:]), dtype=self._buf.dtype
        )
        grown[: self._n] = self._buf[: self._n]
        self.bytes_copied += int(
            self._n * self._buf.dtype.itemsize * _row_elems(self._buf)
        )
        self._buf = grown


def _row_elems(buf: np.ndarray) -> int:
    n = 1
    for extent in buf.shape[1:]:
        n *= extent
    return n
