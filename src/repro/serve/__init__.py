"""SLO-aware online serving front end.

``HarmonyDB.search`` is a blocking library call: concurrent callers
each pay full per-request dispatch and can never share the fused
shard-major ``search_batch`` path. :class:`HarmonyServer` turns the
library into a service — individual ``submit(query, k)`` calls from
many threads (or the asyncio facade) are coalesced into micro-batches,
flushed on size or an SLO-derived deadline, executed through the
existing kernel on any backend, and demultiplexed back to per-request
futures. Admission control bounds the queue under overload instead of
letting p99 grow without bound.

Quickstart::

    from repro import HarmonyConfig, HarmonyDB

    db = HarmonyDB(dim=128, config=HarmonyConfig(backend="thread"))
    db.build(base)
    with db.serve() as server:
        futures = [server.submit(q, k=10) for q in queries]
        for fut in futures:
            response = fut.result()
            print(response.ids, response.e2e_seconds)

:mod:`repro.serve.harness` adds the open-loop load harness behind
``python -m repro serve-bench`` and
``benchmarks/bench_latency_under_load.py``.
"""

from repro.serve.harness import (
    OpenLoopResult,
    SequentialResult,
    admission_study,
    make_serial_oracle,
    run_open_loop,
    run_sequential,
    throughput_study,
    verify_against_oracle,
)
from repro.serve.server import (
    SERVE_LANE,
    AdmissionError,
    HarmonyServer,
    RequestRejected,
    RequestShed,
    RequestTimeout,
    ServeResponse,
    ServerClosed,
    ServeStats,
)

__all__ = [
    "SERVE_LANE",
    "AdmissionError",
    "HarmonyServer",
    "OpenLoopResult",
    "RequestRejected",
    "RequestShed",
    "RequestTimeout",
    "SequentialResult",
    "ServeResponse",
    "ServerClosed",
    "ServeStats",
    "admission_study",
    "make_serial_oracle",
    "run_open_loop",
    "run_sequential",
    "throughput_study",
    "verify_against_oracle",
]
