"""Open-loop / closed-loop serving load harness.

Methodology (the serving-systems standard the paper's throughput
claims assume):

- **closed loop, unbatched** (:func:`run_sequential`): one request in
  flight at a time, next request issued when the previous returns.
  Measures the per-request service floor and the baseline QPS a
  naive caller achieves.
- **open loop** (:func:`run_open_loop`): requests arrive on a wall
  clock schedule (Poisson or bursty, from
  :mod:`repro.workload.generators`) regardless of completions, as
  real traffic does. Under saturation the coalescing server's queue
  fills, batches deepen, and sustained throughput rises toward the
  fused ``search_batch`` ceiling — the win this harness quantifies.

Every completed response is checkable against a per-query *serial
oracle* (:func:`make_serial_oracle`): byte-identical ids and distances
at the response's ``nprobe_used``, extending the repo's
backend-equivalence contract through the serving layer.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.serve.server import (
    AdmissionError,
    HarmonyServer,
    RequestShed,
    ServeResponse,
)


def make_serial_oracle(db):
    """Per-query serial reference executor for byte-identity checks.

    Builds a :class:`~repro.core.executor.serial.SerialBackend` over
    the database's live index and plan (same pruning / prewarm / scan
    precision settings) and returns ``oracle(query, k, nprobe) ->
    (ids, distances)`` running one query at a time — the ground truth
    any batched, coalesced, or degraded-admission execution must match
    exactly at the same effective nprobe.
    """
    from repro.core.executor.serial import SerialBackend

    config = db.config
    backend = SerialBackend(
        db.index,
        plan=db.plan,
        prewarm_size=config.prewarm_size,
        enable_pruning=config.enable_pruning,
        batch_queries=False,
        scan_precision=config.scan_precision,
    )

    def oracle(query, k: int, nprobe: int):
        query = np.asarray(query, dtype=np.float32).reshape(1, -1)
        result = backend.search(query, k=k, nprobe=nprobe)
        return result.ids[0], result.distances[0]

    return oracle


def verify_against_oracle(responses, queries, oracle) -> "list[int]":
    """Indices of completed responses that mismatch the serial oracle.

    Admission failures (rejected / shed entries) are skipped — only
    answers actually returned to callers are held to byte identity.
    Degraded responses are checked at their reduced ``nprobe_used``:
    degraded service changes *which* question is answered, never the
    exactness of the answer.
    """
    mismatches: list[int] = []
    for i, response in enumerate(responses):
        if not isinstance(response, ServeResponse):
            continue
        ids, distances = oracle(queries[i], response.k, response.nprobe_used)
        if not (
            np.array_equal(ids, response.ids)
            and np.array_equal(distances, response.distances)
        ):
            mismatches.append(i)
    return mismatches


def _percentile_ms(latencies: np.ndarray, percentile: float) -> float:
    if latencies.size == 0:
        return 0.0
    return float(np.percentile(latencies, percentile) * 1000.0)


@dataclass
class SequentialResult:
    """Closed-loop unbatched baseline measurements.

    Attributes:
        latencies: per-request wall seconds (service only — the closed
            loop never queues).
        elapsed_seconds: total wall time for the sweep.
        ids / distances: per-request answers, for oracle checks.
    """

    latencies: np.ndarray
    elapsed_seconds: float
    ids: "list[np.ndarray]" = field(default_factory=list)
    distances: "list[np.ndarray]" = field(default_factory=list)

    @property
    def qps(self) -> float:
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return len(self.latencies) / self.elapsed_seconds

    def percentile_ms(self, percentile: float) -> float:
        return _percentile_ms(self.latencies, percentile)

    def to_dict(self) -> dict:
        return {
            "mode": "closed-loop-unbatched",
            "n_requests": int(self.latencies.size),
            "qps": self.qps,
            "mean_ms": float(self.latencies.mean() * 1000.0)
            if self.latencies.size
            else 0.0,
            "p50_ms": self.percentile_ms(50),
            "p99_ms": self.percentile_ms(99),
        }


@dataclass
class OpenLoopResult:
    """Open-loop replay measurements for one (rate, policy) cell.

    Attributes:
        responses: per-request outcome aligned with the submitted
            queries — a :class:`ServeResponse`, or the
            :class:`AdmissionError` instance for dropped requests.
        latencies: e2e seconds of *admitted-and-completed* requests.
        offered_qps: the schedule's average arrival rate.
        duration_seconds: first submit to last resolution.
    """

    responses: list
    latencies: np.ndarray
    offered_qps: float
    duration_seconds: float
    completed: int = 0
    rejected: int = 0
    shed: int = 0
    degraded: int = 0

    @property
    def n_requests(self) -> int:
        return len(self.responses)

    @property
    def sustained_qps(self) -> float:
        """Completed requests per wall second — the throughput metric."""
        if self.duration_seconds <= 0.0:
            return 0.0
        return self.completed / self.duration_seconds

    @property
    def accounted(self) -> bool:
        """Admission control accounts for every submitted request."""
        return self.completed + self.rejected + self.shed == self.n_requests

    def percentile_ms(self, percentile: float) -> float:
        return _percentile_ms(self.latencies, percentile)

    def mean_batch_size(self) -> float:
        sizes = [
            r.batch_size for r in self.responses
            if isinstance(r, ServeResponse)
        ]
        if not sizes:
            return 0.0
        return float(np.mean(sizes))

    def to_dict(self) -> dict:
        return {
            "mode": "open-loop-coalesced",
            "n_requests": self.n_requests,
            "offered_qps": float(self.offered_qps),
            "sustained_qps": self.sustained_qps,
            "duration_seconds": float(self.duration_seconds),
            "completed": self.completed,
            "rejected": self.rejected,
            "shed": self.shed,
            "degraded": self.degraded,
            "mean_batch_size": self.mean_batch_size(),
            "mean_ms": float(self.latencies.mean() * 1000.0)
            if self.latencies.size
            else 0.0,
            "p50_ms": self.percentile_ms(50),
            "p99_ms": self.percentile_ms(99),
        }


def run_sequential(
    db, queries: np.ndarray, k: int = 10, nprobe: int | None = None
) -> SequentialResult:
    """Closed-loop unbatched baseline: one ``db.search`` per query.

    This is what a caller gets without the serving layer — every
    request pays full dispatch, and the fused multi-query kernel path
    never engages.
    """
    queries = np.asarray(queries, dtype=np.float32)
    latencies = np.zeros(queries.shape[0], dtype=np.float64)
    ids: list[np.ndarray] = []
    distances: list[np.ndarray] = []
    t0 = time.perf_counter()
    for i in range(queries.shape[0]):
        t_start = time.perf_counter()
        result, _ = db.search(queries[i : i + 1], k=k, nprobe=nprobe)
        latencies[i] = time.perf_counter() - t_start
        ids.append(result.ids[0])
        distances.append(result.distances[0])
    elapsed = time.perf_counter() - t0
    return SequentialResult(
        latencies=latencies,
        elapsed_seconds=elapsed,
        ids=ids,
        distances=distances,
    )


def run_open_loop(
    server: HarmonyServer,
    queries: np.ndarray,
    arrivals: np.ndarray,
    k: int = 10,
    nprobe: int | None = None,
    timeout: float = 120.0,
) -> OpenLoopResult:
    """Replay an arrival schedule against a server on the wall clock.

    Sleeps to each arrival offset (submission never waits for
    completions — open loop), submits, then gathers every future.
    Admission drops are recorded, not raised; ``timeout`` bounds the
    wait for any single future and only trips on a wedged server.
    """
    queries = np.asarray(queries, dtype=np.float32)
    arrivals = np.asarray(arrivals, dtype=np.float64)
    if queries.shape[0] != arrivals.shape[0]:
        raise ValueError(
            f"queries ({queries.shape[0]}) and arrivals "
            f"({arrivals.shape[0]}) must align"
        )
    span = float(arrivals[-1] - arrivals[0]) if arrivals.size > 1 else 0.0
    offered = queries.shape[0] / span if span > 0 else float(queries.shape[0])
    futures = []
    t0 = time.perf_counter()
    for i in range(queries.shape[0]):
        lag = (arrivals[i] - arrivals[0]) - (time.perf_counter() - t0)
        if lag > 0:
            time.sleep(lag)
        futures.append(server.submit(queries[i], k=k, nprobe=nprobe))
    responses: list = []
    for future in futures:
        try:
            responses.append(future.result(timeout=timeout))
        except AdmissionError as exc:
            responses.append(exc)
    duration = time.perf_counter() - t0
    out = OpenLoopResult(
        responses=responses,
        latencies=np.array(
            [
                r.e2e_seconds
                for r in responses
                if isinstance(r, ServeResponse)
            ],
            dtype=np.float64,
        ),
        offered_qps=offered,
        duration_seconds=duration,
    )
    for response in responses:
        if isinstance(response, ServeResponse):
            out.completed += 1
            if response.degraded:
                out.degraded += 1
        elif isinstance(response, RequestShed):
            out.shed += 1
        else:
            out.rejected += 1
    return out


def throughput_study(
    db,
    queries: np.ndarray,
    k: int = 10,
    nprobe: int | None = None,
    fractions: "tuple[float, ...]" = (0.5, 1.0, 2.0),
    include_bursty: bool = True,
    seed: int = 0,
    verify: bool = True,
    **server_overrides,
) -> dict:
    """QPS vs latency: unbatched-sequential vs server-coalesced.

    Measures the closed-loop unbatched baseline, then replays open-loop
    Poisson schedules at ``fraction x baseline-QPS`` offered load (plus
    one bursty row at the saturating rate when ``include_bursty``),
    each against a fresh server. ``speedup_at_saturation`` is the
    headline number: sustained coalesced QPS at the highest offered
    fraction over the unbatched baseline QPS.

    The server rows default ``queue_depth`` to the request count so
    admission control never sheds here — shedding behavior has its own
    study (:func:`admission_study`). With ``verify=True`` every
    completed response is checked byte-identical to the serial oracle.
    """
    from repro.workload.generators import bursty_arrivals, poisson_arrivals

    queries = np.asarray(queries, dtype=np.float32)
    n = queries.shape[0]
    server_overrides.setdefault("queue_depth", n)
    sequential = run_sequential(db, queries, k=k, nprobe=nprobe)
    base_qps = max(sequential.qps, 1.0)
    oracle = make_serial_oracle(db) if verify else None
    mismatches = 0
    if oracle is not None:
        for i in range(n):
            ids, distances = oracle(
                queries[i], k, nprobe if nprobe is not None else db.config.nprobe
            )
            if not (
                np.array_equal(ids, sequential.ids[i])
                and np.array_equal(distances, sequential.distances[i])
            ):
                mismatches += 1
    rows = []
    schedules = [
        ("poisson", fraction, fraction * base_qps) for fraction in fractions
    ]
    if include_bursty and fractions:
        schedules.append(("bursty", max(fractions), max(fractions) * base_qps))
    for arrival_kind, fraction, rate in schedules:
        if arrival_kind == "bursty":
            arrivals = bursty_arrivals(n, rate, seed=seed)
        else:
            arrivals = poisson_arrivals(n, rate, seed=seed)
        server = db.serve(**server_overrides)
        try:
            open_loop = run_open_loop(
                server, queries, arrivals, k=k, nprobe=nprobe
            )
        finally:
            server.close()
        if oracle is not None:
            mismatches += len(
                verify_against_oracle(open_loop.responses, queries, oracle)
            )
        row = open_loop.to_dict()
        row["arrival"] = arrival_kind
        row["rate_fraction"] = float(fraction)
        row["speedup_vs_sequential"] = (
            open_loop.sustained_qps / base_qps if base_qps > 0 else 0.0
        )
        rows.append(row)
    saturating = [
        row
        for row in rows
        if row["arrival"] == "poisson"
        and row["rate_fraction"] == max(fractions)
    ]
    speedup = saturating[0]["speedup_vs_sequential"] if saturating else 0.0
    return {
        "sequential": sequential.to_dict(),
        "rows": rows,
        "speedup_at_saturation": float(speedup),
        "oracle_mismatches": int(mismatches),
    }


def admission_study(
    db,
    queries: np.ndarray,
    k: int = 10,
    nprobe: int | None = None,
    queue_depth: int = 16,
    overload_factor: float = 6.0,
    policies: "tuple[str, ...]" = (
        "reject",
        "shed_oldest",
        "degrade_nprobe",
    ),
    seed: int = 0,
    verify: bool = True,
    **server_overrides,
) -> "list[dict]":
    """Admission-control behavior under sustained overload.

    Replays a Poisson schedule at ``overload_factor`` times the
    measured *sequential* capacity against a deliberately small
    ``queue_depth``, once per shed policy. Coalescing itself roughly
    doubles capacity, so the default factor is set well past the
    coalesced ceiling — admission control only engages once the
    server genuinely cannot keep up. Each row reports the
    completed / rejected / shed / degraded split, whether accounting
    closed exactly, and the admitted-request p99 — which stays bounded
    by the queue (depth x batch service), not by the experiment
    length, precisely because excess load is dropped at the door.
    """
    from repro.workload.generators import poisson_arrivals

    queries = np.asarray(queries, dtype=np.float32)
    n = queries.shape[0]
    sequential = run_sequential(db, queries[: max(32, n // 4)], k=k, nprobe=nprobe)
    rate = max(sequential.qps, 1.0) * overload_factor
    arrivals = poisson_arrivals(n, rate, seed=seed)
    oracle = make_serial_oracle(db) if verify else None
    rows = []
    for policy in policies:
        server = db.serve(
            queue_depth=queue_depth, shed_policy=policy, **server_overrides
        )
        try:
            open_loop = run_open_loop(
                server, queries, arrivals, k=k, nprobe=nprobe
            )
            stats = server.stats.to_dict()
        finally:
            server.close()
        row = open_loop.to_dict()
        row["policy"] = policy
        row["queue_depth"] = int(queue_depth)
        row["overload_factor"] = float(overload_factor)
        row["accounted"] = bool(open_loop.accounted)
        row["max_queue_depth"] = stats["max_queue_depth"]
        row["oracle_mismatches"] = (
            len(verify_against_oracle(open_loop.responses, queries, oracle))
            if oracle is not None
            else 0
        )
        rows.append(row)
    return rows
