"""Micro-batch coalescing server with SLO-derived flush deadlines.

The serving state machine (per pending request):

1. **submit** — admission control runs under the queue lock. Below
   ``queue_depth`` the request is appended to the pending deque and the
   flusher is woken. At or above depth the configured
   :class:`~repro.core.config.HarmonyConfig` ``serve_shed_policy``
   decides: ``reject`` fails the *new* request, ``shed_oldest`` evicts
   the head (oldest waiter) to make room, ``degrade_nprobe`` admits up
   to ``2 x queue_depth`` requests flagged for half-``nprobe`` service
   and sheds the oldest beyond that hard cap.
2. **coalesce** — the flusher thread sleeps until either the head-
   compatible run of the queue reaches ``max_batch`` or the *oldest*
   pending request ages past the flush deadline
   ``serve_slo_ms * serve_deadline_fraction`` milliseconds. The
   deadline is anchored to the oldest waiter, so a trickle of traffic
   never waits longer than the deadline and a burst fills batches
   without waiting at all.
3. **execute** — the batch (requests sharing a ``(k, nprobe,
   degraded)`` compatibility key, popped head-first) is stacked into
   one query matrix and run through ``HarmonyDB.search``, which
   dispatches to the fused ``ScanKernel.search_batch`` on whichever
   backend the deployment uses. Results are row-sliced back onto each
   request's future as a :class:`ServeResponse`.

Batches mix freely across callers but never across incompatible
parameters, so every response is byte-identical to a per-query serial
execution at the response's ``nprobe_used`` — the backend-equivalence
contract extends to the serving layer.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from concurrent.futures import TimeoutError as _FuturesTimeout
from dataclasses import dataclass, field

import numpy as np

SERVE_LANE = 3000
"""Trace lane for serve-layer batch spans.

Host worker threads occupy lanes ``HOST_LANE_BASE + i`` (1000+); the
serving layer records its per-batch spans on a dedicated lane well
above them so batch boundaries read as their own track in the Chrome
trace viewer.
"""

BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)


class AdmissionError(RuntimeError):
    """Base class for admission-control failures set on request futures."""


class RequestRejected(AdmissionError):
    """The queue was full and ``shed_policy="reject"`` refused the request."""


class RequestShed(AdmissionError):
    """The request was evicted from the queue to admit newer traffic."""


class RequestTimeout(RuntimeError):
    """The request's end-to-end deadline expired before its batch
    finished (``serve_deadline_policy="timeout"``)."""


class ServerClosed(RuntimeError):
    """``submit`` was called on a closed (or closing) server."""


@dataclass(frozen=True)
class ServeResponse:
    """One request's answer plus its serving-latency breakdown.

    Attributes:
        ids: ``(k,)`` global vector ids, padded with ``-1``.
        distances: ``(k,)`` ascending scores, padded with ``+inf``.
        k: requested neighbor count.
        nprobe_used: the nprobe the batch actually ran at (halved from
            the requested value when ``degraded`` is set).
        degraded: True when admission control admitted this request
            over ``queue_depth`` under ``degrade_nprobe`` and served it
            at reduced nprobe.
        queue_seconds: time spent waiting in the coalescing buffer.
        service_seconds: wall-clock of the batch search this request
            rode in.
        batch_size: how many requests shared that batch.
        timed_out: True when the request's end-to-end deadline expired
            mid-execution and ``serve_deadline_policy="partial"``
            resolved it with an empty degraded payload (``ids`` all
            ``-1``, ``distances`` all ``+inf``) instead of blocking.
        cache_hit: True when the answer came straight from the
            deployment's result cache at submit time — the request
            never entered the coalescing queue, so admission control
            and the SLO machinery never saw it (``queue_seconds`` is
            exactly ``0.0``).
    """

    ids: np.ndarray
    distances: np.ndarray
    k: int
    nprobe_used: int
    degraded: bool
    queue_seconds: float
    service_seconds: float
    batch_size: int
    timed_out: bool = False
    cache_hit: bool = False

    @property
    def e2e_seconds(self) -> float:
        """End-to-end latency: queue wait plus batch service."""
        return self.queue_seconds + self.service_seconds


@dataclass
class ServeStats:
    """Cumulative serving counters (single server instance).

    ``submitted == completed + rejected + shed + failed`` once the
    queue is drained — admission control accounts for every request.
    """

    submitted: int = 0
    completed: int = 0
    rejected: int = 0
    shed: int = 0
    degraded: int = 0
    failed: int = 0
    batches: int = 0
    max_queue_depth: int = 0
    queue_seconds: float = 0.0
    service_seconds: float = 0.0
    slo_violations: int = 0
    deadline_exceeded: int = 0
    cache_hits: int = 0

    @property
    def mean_batch_size(self) -> float:
        if self.batches == 0:
            return 0.0
        return self.completed / self.batches

    def to_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "rejected": self.rejected,
            "shed": self.shed,
            "degraded": self.degraded,
            "failed": self.failed,
            "batches": self.batches,
            "mean_batch_size": self.mean_batch_size,
            "max_queue_depth": self.max_queue_depth,
            "queue_seconds": float(self.queue_seconds),
            "service_seconds": float(self.service_seconds),
            "slo_violations": self.slo_violations,
            "deadline_exceeded": self.deadline_exceeded,
            "cache_hits": self.cache_hits,
        }


@dataclass
class _Request:
    query: np.ndarray
    k: int
    nprobe: int
    degraded: bool
    future: Future = field(default_factory=Future)
    t_submit: float = 0.0

    @property
    def batch_key(self) -> tuple:
        return (self.k, self.nprobe, self.degraded)


class HarmonyServer:
    """Coalescing front end over one built :class:`HarmonyDB`.

    Thread-safe: any number of caller threads may ``submit``
    concurrently; a single internal flusher thread owns batch
    execution, so the underlying backend never sees concurrent
    searches from the server. Async callers use :meth:`asubmit`.

    Construct via :meth:`repro.core.database.HarmonyDB.serve`, which
    defaults every knob from the deployment's ``serve_*`` config
    fields.
    """

    def __init__(
        self,
        db,
        max_batch: int | None = None,
        slo_ms: float | None = None,
        deadline_fraction: float | None = None,
        queue_depth: int | None = None,
        shed_policy: str | None = None,
        deadline_policy: str | None = None,
        metrics=None,
    ) -> None:
        config = db.config
        self.db = db
        self.max_batch = int(
            max_batch if max_batch is not None else config.serve_max_batch
        )
        self.slo_ms = float(
            slo_ms if slo_ms is not None else config.serve_slo_ms
        )
        fraction = float(
            deadline_fraction
            if deadline_fraction is not None
            else config.serve_deadline_fraction
        )
        self.deadline_fraction = fraction
        self.queue_depth = int(
            queue_depth if queue_depth is not None else config.serve_queue_depth
        )
        policy = (
            shed_policy if shed_policy is not None else config.serve_shed_policy
        )
        policy = str(policy).lower().replace("-", "_")
        from repro.core.config import DEADLINE_POLICIES, SHED_POLICIES

        if policy not in SHED_POLICIES:
            raise ValueError(
                f"unknown shed_policy {policy!r}; expected one of "
                f"{', '.join(SHED_POLICIES)}"
            )
        self.shed_policy = policy
        dpolicy = (
            deadline_policy
            if deadline_policy is not None
            else config.serve_deadline_policy
        )
        dpolicy = str(dpolicy).lower().replace("-", "_")
        if dpolicy not in DEADLINE_POLICIES:
            raise ValueError(
                f"unknown deadline_policy {dpolicy!r}; expected one of "
                f"{', '.join(DEADLINE_POLICIES)}"
            )
        self.deadline_policy = dpolicy
        if self.max_batch <= 0:
            raise ValueError(f"max_batch must be positive, got {max_batch}")
        if self.slo_ms <= 0:
            raise ValueError(f"slo_ms must be positive, got {slo_ms}")
        if not 0.0 < fraction <= 1.0:
            raise ValueError(
                f"deadline_fraction must be in (0, 1], got {fraction}"
            )
        if self.queue_depth <= 0:
            raise ValueError(
                f"queue_depth must be positive, got {queue_depth}"
            )
        self.metrics = metrics if metrics is not None else db.metrics
        self.stats = ServeStats()
        self.last_report = None
        self._pending: deque[_Request] = deque()
        self._cond = threading.Condition()
        self._paused = False
        self._closing = False
        self._closed = False
        #: Single-thread helper that runs batch searches when a
        #: non-blocking deadline policy is active, so the flusher can
        #: resolve expired waiters while the search is still running.
        #: Lazy: the default "block" policy never creates it.
        self._exec_pool = None
        self._thread = threading.Thread(
            target=self._flush_loop, name="harmony-serve-flusher", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------
    # Derived parameters
    # ------------------------------------------------------------------

    @property
    def flush_deadline_seconds(self) -> float:
        """Max coalescing wait: ``slo_ms * deadline_fraction``, seconds.

        The deadline budgets a fraction of the SLO for batching and
        leaves the rest for service; anchored to the *oldest* pending
        request so no admitted request waits longer than this before
        its batch is dispatched.
        """
        return self.slo_ms * self.deadline_fraction / 1000.0

    @property
    def depth(self) -> int:
        """Current pending-queue depth (admitted, not yet dispatched)."""
        with self._cond:
            return len(self._pending)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(
        self, query: np.ndarray, k: int = 10, nprobe: int | None = None
    ) -> Future:
        """Enqueue one query; returns a future of :class:`ServeResponse`.

        The future resolves when the request's micro-batch completes,
        or fails with :class:`RequestRejected` / :class:`RequestShed`
        when admission control drops it. Requests only coalesce with
        compatible ones (same ``k`` and effective ``nprobe``), so the
        response is byte-identical to a standalone
        ``db.search(query[None], k, nprobe)`` at ``nprobe_used``.

        Raises:
            ServerClosed: when called after :meth:`close`.
            ValueError: for malformed queries or parameters.
        """
        query = np.asarray(query, dtype=np.float32)
        if query.ndim == 2 and query.shape[0] == 1:
            query = query[0]
        if query.ndim != 1:
            raise ValueError(
                f"submit takes one query vector, got shape {query.shape}"
            )
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        effective_nprobe = int(
            nprobe if nprobe is not None else self.db.config.nprobe
        )
        if effective_nprobe <= 0:
            raise ValueError(f"nprobe must be positive, got {nprobe}")
        if getattr(self.db, "result_cache", None) is not None:
            future = self._try_cache_fast_path(query, int(k), effective_nprobe)
            if future is not None:
                return future
        request = _Request(
            query=query, k=int(k), nprobe=effective_nprobe, degraded=False
        )
        shed_victim: _Request | None = None
        with self._cond:
            if self._closing:
                raise ServerClosed("submit() on a closed HarmonyServer")
            self.stats.submitted += 1
            self._count("harmony_serve_requests_total", "Requests submitted")
            depth = len(self._pending)
            if depth >= self.queue_depth:
                if self.shed_policy == "reject":
                    self.stats.rejected += 1
                    self._count(
                        "harmony_serve_rejected_total",
                        "Requests rejected at admission (queue full)",
                    )
                    request.future.set_exception(
                        RequestRejected(
                            f"queue full ({depth} pending >= depth "
                            f"{self.queue_depth})"
                        )
                    )
                    return request.future
                if self.shed_policy == "shed_oldest" or (
                    depth >= 2 * self.queue_depth
                ):
                    # degrade_nprobe hard-caps at twice the configured
                    # depth; beyond it the oldest waiter is shed.
                    shed_victim = self._pending.popleft()
                    self.stats.shed += 1
                    self._count(
                        "harmony_serve_shed_total",
                        "Queued requests evicted to admit newer traffic",
                    )
                if self.shed_policy == "degrade_nprobe":
                    request.degraded = True
                    request.nprobe = max(1, request.nprobe // 2)
                    self.stats.degraded += 1
                    self._count(
                        "harmony_serve_degraded_total",
                        "Requests admitted over depth at reduced nprobe",
                    )
            request.t_submit = time.perf_counter()
            self._pending.append(request)
            new_depth = len(self._pending)
            self.stats.max_queue_depth = max(
                self.stats.max_queue_depth, new_depth
            )
            if self.metrics is not None:
                self._gauge(
                    "harmony_serve_queue_depth",
                    "Pending coalescing-queue depth",
                ).set(float(new_depth))
            self._cond.notify_all()
        if shed_victim is not None:
            shed_victim.future.set_exception(
                RequestShed("evicted from the queue to admit newer traffic")
            )
        return request.future

    def _try_cache_fast_path(
        self, query: np.ndarray, k: int, nprobe: int
    ) -> "Future | None":
        """Resolve the request from the result cache before enqueueing.

        A hit returns an already-resolved future: the request never
        enters the pending queue, so it can neither be rejected nor
        shed, dodges the SLO coalescing deadline entirely, and reports
        ``queue_seconds == 0``. A miss (or probe failure) returns None
        and the request takes the normal admission path — the miss is
        not counted here; the authoritative cache lookup happens when
        the batch flows through ``HarmonyDB.search``.
        """
        t_probe = time.perf_counter()
        try:
            hit = self.db.cache_probe(query, k=k, nprobe=nprobe)
        except Exception:
            return None
        if hit is None:
            return None
        service = time.perf_counter() - t_probe
        with self._cond:
            if self._closing:
                raise ServerClosed("submit() on a closed HarmonyServer")
            self.stats.submitted += 1
            self._count("harmony_serve_requests_total", "Requests submitted")
            self.stats.completed += 1
            self.stats.cache_hits += 1
            self._count(
                "harmony_serve_cache_hits_total",
                "Requests answered from the result cache at submit",
            )
        future: Future = Future()
        future.set_result(
            ServeResponse(
                ids=hit.ids,
                distances=hit.distances,
                k=k,
                nprobe_used=nprobe,
                degraded=False,
                queue_seconds=0.0,
                service_seconds=float(service),
                batch_size=1,
                cache_hit=True,
            )
        )
        return future

    async def asubmit(
        self, query: np.ndarray, k: int = 10, nprobe: int | None = None
    ):
        """Asyncio facade over :meth:`submit`.

        Awaits the request's future without blocking the event loop;
        admission failures surface as the same exceptions ``submit``
        sets. Safe to call from many coroutines — the thread-safe queue
        core does the coalescing.
        """
        import asyncio

        return await asyncio.wrap_future(self.submit(query, k=k, nprobe=nprobe))

    # ------------------------------------------------------------------
    # Flow control (primarily for tests and controlled experiments)
    # ------------------------------------------------------------------

    def pause(self) -> None:
        """Stop dispatching batches; submissions keep queueing."""
        with self._cond:
            self._paused = True

    def resume(self) -> None:
        """Resume dispatching after :meth:`pause`."""
        with self._cond:
            self._paused = False
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self, timeout: float | None = 30.0) -> None:
        """Drain pending requests, stop the flusher, reject new work.

        Idempotent. Pending requests are still executed (flushed
        immediately, ignoring the deadline); only *new* submissions
        fail with :class:`ServerClosed`.
        """
        with self._cond:
            if self._closed:
                return
            self._closing = True
            self._paused = False
            self._cond.notify_all()
        self._thread.join(timeout)
        if self._exec_pool is not None:
            self._exec_pool.shutdown(wait=True)
            self._exec_pool = None
        self._closed = True

    def __enter__(self) -> "HarmonyServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Flusher
    # ------------------------------------------------------------------

    def _head_run(self) -> int:
        """Length of the head-compatible run, capped at ``max_batch``."""
        count = 0
        key = None
        for request in self._pending:
            if key is None:
                key = request.batch_key
            elif request.batch_key != key:
                break
            count += 1
            if count >= self.max_batch:
                break
        return count

    def _take_batch(self) -> "list[_Request]":
        batch: list[_Request] = []
        key = self._pending[0].batch_key
        while (
            self._pending
            and len(batch) < self.max_batch
            and self._pending[0].batch_key == key
        ):
            batch.append(self._pending.popleft())
        return batch

    def _flush_loop(self) -> None:
        while True:
            batch = None
            with self._cond:
                while batch is None:
                    if not self._pending:
                        if self._closing:
                            return
                        self._cond.wait()
                        continue
                    if self._paused and not self._closing:
                        self._cond.wait()
                        continue
                    now = time.perf_counter()
                    deadline = (
                        self._pending[0].t_submit
                        + self.flush_deadline_seconds
                    )
                    if (
                        self._closing
                        or self._head_run() >= self.max_batch
                        # Saturation flush: once admission control is
                        # shedding, waiting for a deeper batch only
                        # evicts more waiters (shed_oldest would
                        # otherwise churn the head and push the
                        # head-anchored deadline forever forward).
                        or len(self._pending) >= self.queue_depth
                        or now >= deadline
                    ):
                        batch = self._take_batch()
                        if self.metrics is not None:
                            self._gauge(
                                "harmony_serve_queue_depth",
                                "Pending coalescing-queue depth",
                            ).set(float(len(self._pending)))
                    else:
                        self._cond.wait(timeout=deadline - now)
            self._execute(batch)

    def _execute(self, batch: "list[_Request]") -> None:
        """Run one batch, never letting a failure kill the flusher.

        Any exception — batch assembly, dispatch, or the search
        itself — fails only *this batch's* unresolved futures (counted
        in ``ServeStats.failed``); the flusher thread survives to
        serve the next batch.
        """
        try:
            self._execute_batch(batch)
        except BaseException as exc:  # noqa: BLE001 - forwarded to callers
            unresolved = [r for r in batch if not r.future.done()]
            self.stats.failed += len(unresolved)
            self._count(
                "harmony_serve_failed_total",
                "Requests failed by batch-execution errors",
                n=len(unresolved),
            )
            for request in unresolved:
                request.future.set_exception(exc)

    # -- deadline-aware execution ---------------------------------------

    def _ensure_exec_pool(self):
        if self._exec_pool is None:
            from concurrent.futures import ThreadPoolExecutor

            self._exec_pool = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="harmony-serve-exec"
            )
        return self._exec_pool

    def _resolve_expired(
        self, request: "_Request", now: float, batch_size: int, t_start: float
    ) -> None:
        """Resolve one waiter whose e2e deadline passed mid-execution."""
        self.stats.deadline_exceeded += 1
        self.stats.slo_violations += 1
        self._count(
            "harmony_serve_deadline_exceeded_total",
            "Requests resolved at their expired e2e deadline",
        )
        self._count(
            "harmony_serve_slo_violations_total",
            "Requests whose e2e latency exceeded serve_slo_ms",
        )
        if self.deadline_policy == "timeout":
            self.stats.failed += 1
            request.future.set_exception(
                RequestTimeout(
                    f"deadline ({self.slo_ms:g} ms) expired before the "
                    f"batch finished"
                )
            )
            return
        # "partial": an empty degraded payload, flagged — the serving
        # twin of degraded-mode coverage flags, with zero coverage.
        self.stats.completed += 1
        request.future.set_result(
            ServeResponse(
                ids=np.full(request.k, -1, dtype=np.int64),
                distances=np.full(request.k, np.inf, dtype=np.float64),
                k=request.k,
                nprobe_used=request.nprobe,
                degraded=True,
                queue_seconds=float(t_start - request.t_submit),
                service_seconds=float(now - t_start),
                batch_size=batch_size,
                timed_out=True,
            )
        )

    def _search_with_deadlines(self, batch, queries, k, nprobe, t_start):
        """Run the batch on the helper thread, resolving waiters whose
        deadline expires mid-flight; returns ``(result, report)`` or
        ``(None, None)`` when every waiter was already resolved.

        The helper pool has exactly one thread, so batch searches stay
        serialized even when an abandoned search is still draining —
        the backend never sees concurrent calls.
        """
        pool = self._ensure_exec_pool()
        search = pool.submit(self.db.search, queries, k=k, nprobe=nprobe)
        slo = self.slo_ms / 1000.0
        waiters = sorted(batch, key=lambda r: r.t_submit)
        idx = 0
        while True:
            now = time.perf_counter()
            while idx < len(waiters) and waiters[idx].t_submit + slo <= now:
                if not search.done():
                    self._resolve_expired(
                        waiters[idx], now, len(batch), t_start
                    )
                idx += 1
            if search.done():
                break
            if idx >= len(waiters):
                # Every waiter is resolved; let the search drain on the
                # helper (the next batch queues behind it) and swallow
                # its eventual outcome.
                search.add_done_callback(lambda f: f.exception())
                return None, None
            try:
                search.result(
                    timeout=max(0.0, waiters[idx].t_submit + slo - now)
                )
            except _FuturesTimeout:
                continue
            break
        # Done (or failed): surface the outcome to the normal path.
        return search.result()

    def _execute_batch(self, batch: "list[_Request]") -> None:
        queries = np.stack([request.query for request in batch])
        k = batch[0].k
        nprobe = batch[0].nprobe
        degraded = batch[0].degraded
        t_start = time.perf_counter()
        if self.deadline_policy == "block":
            result, report = self.db.search(queries, k=k, nprobe=nprobe)
        else:
            result, report = self._search_with_deadlines(
                batch, queries, k, nprobe, t_start
            )
            if result is None:
                return
        t_end = time.perf_counter()
        service = t_end - t_start
        # Waiters resolved at their deadline mid-execution (partial /
        # timeout policies) already got their answer; the late real
        # results are discarded for them below.
        live = [not request.future.done() for request in batch]
        queue_waits = np.array(
            [t_start - request.t_submit for request in batch],
            dtype=np.float64,
        )
        # Satellite fix: the batch report's latency distribution is the
        # per-request end-to-end (queue wait + service) latency, not a
        # single batch wall-time sample, so report.qps / percentiles
        # describe what callers observed.
        report.latencies = queue_waits + service
        report.queue_seconds = float(queue_waits.sum())
        self.last_report = report
        self.stats.batches += 1
        self.stats.completed += sum(live)
        self.stats.queue_seconds += float(queue_waits.sum())
        self.stats.service_seconds += service
        tracer = self.db.tracer
        if tracer is not None:
            # Recorded after the search: _host_search clears the tracer
            # per batch (one trace per batch), so the serve span must
            # land once the backend's own spans are in place.
            tracer.record(
                "serve-batch",
                "other",
                SERVE_LANE,
                t_start,
                t_end,
                batch=len(batch),
                k=k,
                nprobe=nprobe,
                degraded=int(degraded),
            )
        slo_seconds = self.slo_ms / 1000.0
        if self.metrics is not None:
            self._count(
                "harmony_serve_batches_total", "Micro-batches executed"
            )
            self._histogram(
                "harmony_serve_batch_size",
                "Requests coalesced per executed batch",
                buckets=BATCH_SIZE_BUCKETS,
            ).observe(float(len(batch)))
            service_hist = self._histogram(
                "harmony_serve_service_seconds",
                "Batch search wall-clock seconds",
            )
            service_hist.observe(service)
            queue_hist = self._histogram(
                "harmony_serve_queue_wait_seconds",
                "Per-request coalescing queue wait seconds",
            )
            e2e_hist = self._histogram(
                "harmony_serve_e2e_latency_seconds",
                "Per-request end-to-end (queue + service) seconds",
            )
            for wait in queue_waits:
                queue_hist.observe(float(wait))
                e2e_hist.observe(float(wait) + service)
        for i, request in enumerate(batch):
            if not live[i]:
                continue  # resolved at its deadline mid-execution
            e2e = float(queue_waits[i]) + service
            if e2e > slo_seconds:
                self.stats.slo_violations += 1
                self._count(
                    "harmony_serve_slo_violations_total",
                    "Requests whose e2e latency exceeded serve_slo_ms",
                )
            request.future.set_result(
                ServeResponse(
                    ids=result.ids[i],
                    distances=result.distances[i],
                    k=k,
                    nprobe_used=nprobe,
                    degraded=degraded,
                    queue_seconds=float(queue_waits[i]),
                    service_seconds=service,
                    batch_size=len(batch),
                )
            )

    # ------------------------------------------------------------------
    # Metrics plumbing
    # ------------------------------------------------------------------

    def _count(self, name: str, help: str, n: int = 1) -> None:
        if self.metrics is not None and n > 0:
            self.metrics.counter(name, help).inc(float(n))

    def _gauge(self, name: str, help: str):
        return self.metrics.gauge(name, help)

    def _histogram(self, name: str, help: str, buckets: tuple | None = None):
        return self.metrics.histogram(name, help, buckets=buckets)
