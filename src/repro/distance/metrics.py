"""Vector similarity metrics.

HARMONY searches under squared Euclidean distance or inner product
(cosine similarity reduces to inner product on pre-normalized vectors,
see paper Section 3.1). All functions operate on ``numpy`` arrays and
accept either a single vector or a batch of row vectors.
"""

from __future__ import annotations

import enum

import numpy as np


class Metric(str, enum.Enum):
    """Supported similarity metrics.

    ``L2`` orders candidates by *ascending* squared Euclidean distance,
    ``INNER_PRODUCT`` and ``COSINE`` by *descending* similarity. The
    engine internally negates similarities so that "smaller is better"
    holds uniformly.
    """

    L2 = "l2"
    INNER_PRODUCT = "ip"
    COSINE = "cosine"

    @property
    def larger_is_better(self) -> bool:
        return self in (Metric.INNER_PRODUCT, Metric.COSINE)


def resolve_metric(metric: "Metric | str") -> Metric:
    """Coerce a user-supplied metric name into a :class:`Metric`.

    Raises:
        ValueError: if the name does not identify a supported metric.
    """
    if isinstance(metric, Metric):
        return metric
    try:
        return Metric(str(metric).lower())
    except ValueError as exc:
        supported = ", ".join(m.value for m in Metric)
        raise ValueError(
            f"unknown metric {metric!r}; supported metrics: {supported}"
        ) from exc


def squared_l2(p: np.ndarray, q: np.ndarray) -> np.ndarray:
    """Squared Euclidean distance between ``p`` and ``q``.

    Both arguments may be a single vector ``(d,)`` or a batch ``(n, d)``;
    standard broadcasting rules apply. Returns a scalar for two single
    vectors, otherwise an array of per-row distances.
    """
    diff = np.asarray(p, dtype=np.float64) - np.asarray(q, dtype=np.float64)
    return np.sum(diff * diff, axis=-1)


def inner_product(p: np.ndarray, q: np.ndarray) -> np.ndarray:
    """Inner (dot) product between ``p`` and ``q`` with broadcasting."""
    p64 = np.asarray(p, dtype=np.float64)
    q64 = np.asarray(q, dtype=np.float64)
    return np.sum(p64 * q64, axis=-1)


def cosine_similarity(p: np.ndarray, q: np.ndarray) -> np.ndarray:
    """Cosine similarity between ``p`` and ``q`` with broadcasting.

    Zero vectors yield similarity 0 rather than NaN.
    """
    dot = inner_product(p, q)
    norm_p = np.linalg.norm(np.asarray(p, dtype=np.float64), axis=-1)
    norm_q = np.linalg.norm(np.asarray(q, dtype=np.float64), axis=-1)
    denom = norm_p * norm_q
    return np.where(denom > 0.0, dot / np.where(denom > 0.0, denom, 1.0), 0.0)


def normalize_rows(x: np.ndarray) -> np.ndarray:
    """Return a copy of ``x`` with every row scaled to unit L2 norm.

    Rows with zero norm are left untouched. Used to reduce cosine
    similarity search to inner-product search.
    """
    x = np.asarray(x, dtype=np.float32)
    norms = np.linalg.norm(x, axis=-1, keepdims=True)
    safe = np.where(norms > 0.0, norms, 1.0)
    return (x / safe).astype(np.float32)
