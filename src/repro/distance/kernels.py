"""Batched distance kernels.

These are the numpy equivalents of the MKL routines the paper's C++
implementation uses (Section 5). They are written for correctness and
clarity; absolute speed is irrelevant because wall-clock performance in
the reproduction comes from the discrete-event simulator, which charges
time proportional to the number of processed elements.
"""

from __future__ import annotations

import numpy as np


def pairwise_squared_l2(queries: np.ndarray, base: np.ndarray) -> np.ndarray:
    """Squared L2 distance between every query and every base vector.

    Args:
        queries: array of shape ``(nq, d)``.
        base: array of shape ``(nb, d)``.

    Returns:
        Array of shape ``(nq, nb)`` with ``out[i, j] = ||q_i - b_j||^2``.
        Tiny negative values from floating-point cancellation are clipped
        to zero so downstream monotonicity assumptions hold.
    """
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    base = np.atleast_2d(np.asarray(base, dtype=np.float64))
    q_sq = np.sum(queries * queries, axis=1)[:, None]
    b_sq = np.sum(base * base, axis=1)[None, :]
    cross = queries @ base.T
    out = q_sq + b_sq - 2.0 * cross
    np.maximum(out, 0.0, out=out)
    return out


def pairwise_inner_product(queries: np.ndarray, base: np.ndarray) -> np.ndarray:
    """Inner product between every query and every base vector.

    Returns an array of shape ``(nq, nb)``.
    """
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    base = np.atleast_2d(np.asarray(base, dtype=np.float64))
    return queries @ base.T


def squared_l2_to_query(rows: np.ndarray, query: np.ndarray) -> np.ndarray:
    """Squared L2 distance of each row to a single query vector.

    Uses the direct difference formulation (not the norm expansion of
    :func:`pairwise_squared_l2`) so the result is bitwise identical to
    accumulating :func:`repro.distance.partial.partial_squared_l2` over
    a full dimension cover — the property the executor relies on to
    keep prewarm scores and pipeline scores interchangeable.

    Args:
        rows: candidate matrix ``(n, d)``.
        query: query vector ``(d,)``.

    Returns:
        Non-negative array of length ``n``.
    """
    diff = np.asarray(rows, dtype=np.float64) - np.asarray(
        query, dtype=np.float64
    )
    return np.einsum("ij,ij->i", diff, diff)


def inner_product_to_query(rows: np.ndarray, query: np.ndarray) -> np.ndarray:
    """Inner product of each row with a single query vector.

    Returns an array of length ``n`` in float64.
    """
    return np.asarray(rows, dtype=np.float64) @ np.asarray(
        query, dtype=np.float64
    )


def scores_to_query(
    rows: np.ndarray, query: np.ndarray, metric: "object"
) -> np.ndarray:
    """Library-convention scores (smaller is better) against one query.

    Squared L2 for the L2 metric; negated dot product for the inner-
    product family (cosine inputs are assumed pre-normalized). This is
    the single scoring routine every executor backend's prewarm stage
    routes through.
    """
    from repro.distance.metrics import Metric

    if metric is Metric.L2:
        return squared_l2_to_query(rows, query)
    return -inner_product_to_query(rows, query)


def top_k_smallest(values: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Indices and values of the ``k`` smallest entries, ascending.

    Ties are broken by index so results are deterministic. If ``k``
    exceeds the array length, all entries are returned sorted.

    Returns:
        ``(indices, values)`` pair, both of length ``min(k, len(values))``.
    """
    values = np.asarray(values)
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    n = values.shape[0]
    k = min(k, n)
    if k == n:
        order = np.lexsort((np.arange(n), values))
    else:
        partition = np.argpartition(values, k - 1)[:k]
        order = partition[np.lexsort((partition, values[partition]))]
    return order, values[order]
