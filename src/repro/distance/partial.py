"""Partial distances over dimension slices.

Dimension-based partitioning (paper Section 3.1) splits the ``d``
coordinates into ``M`` disjoint slices ``I_1 .. I_M``, one per machine.
The total squared-L2 distance is the sum of per-slice partial distances,
each non-negative, so the running sum is monotonically non-decreasing —
the property HARMONY's early-stop pruning exploits.

For inner-product (and hence cosine) search the per-slice contributions
are not sign-constrained, so monotone pruning needs an upper bound on
what the *remaining* slices can still contribute. We use the
Cauchy-Schwarz bound ``|p_rem . q_rem| <= ||p_rem|| * ||q_rem||`` with
per-slice base-vector norms precomputed at index-build time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class DimensionSlices:
    """A disjoint, ordered cover of the dimension range ``[0, dim)``.

    Attributes:
        boundaries: monotonically increasing cut points including 0 and
            ``dim``; slice ``j`` covers ``[boundaries[j], boundaries[j+1])``.
    """

    boundaries: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.boundaries) < 2:
            raise ValueError("need at least one slice (two boundaries)")
        if self.boundaries[0] != 0:
            raise ValueError("first boundary must be 0")
        diffs = np.diff(self.boundaries)
        if np.any(diffs <= 0):
            raise ValueError(
                f"boundaries must be strictly increasing, got {self.boundaries}"
            )

    @classmethod
    def even(cls, dim: int, n_slices: int) -> "DimensionSlices":
        """Split ``dim`` coordinates into ``n_slices`` near-equal slices.

        The first ``dim % n_slices`` slices receive one extra coordinate,
        mirroring the paper's per-machine quarter splits.
        """
        if n_slices <= 0:
            raise ValueError(f"n_slices must be positive, got {n_slices}")
        if dim < n_slices:
            raise ValueError(
                f"cannot split {dim} dimensions into {n_slices} slices"
            )
        base, extra = divmod(dim, n_slices)
        sizes = [base + 1 if j < extra else base for j in range(n_slices)]
        bounds = [0]
        for size in sizes:
            bounds.append(bounds[-1] + size)
        return cls(tuple(bounds))

    @property
    def dim(self) -> int:
        return self.boundaries[-1]

    @property
    def n_slices(self) -> int:
        return len(self.boundaries) - 1

    def slice_range(self, j: int) -> tuple[int, int]:
        """Half-open coordinate range ``[start, stop)`` of slice ``j``."""
        return self.boundaries[j], self.boundaries[j + 1]

    def slice_width(self, j: int) -> int:
        start, stop = self.slice_range(j)
        return stop - start

    def widths(self) -> tuple[int, ...]:
        return tuple(
            self.boundaries[j + 1] - self.boundaries[j]
            for j in range(self.n_slices)
        )

    def take(self, x: np.ndarray, j: int) -> np.ndarray:
        """View of ``x`` restricted to slice ``j`` (last axis)."""
        start, stop = self.slice_range(j)
        return x[..., start:stop]


def partial_squared_l2(
    base_slice: np.ndarray, query_slice: np.ndarray
) -> np.ndarray:
    """Per-row squared-L2 contribution of one dimension slice.

    Args:
        base_slice: candidate rows restricted to the slice, ``(n, w)``.
        query_slice: the query restricted to the slice, ``(w,)``.

    Returns:
        Non-negative array of length ``n``.
    """
    diff = np.asarray(base_slice, dtype=np.float64) - np.asarray(
        query_slice, dtype=np.float64
    )
    return np.einsum("ij,ij->i", diff, diff)


def partial_inner_product(
    base_slice: np.ndarray, query_slice: np.ndarray
) -> np.ndarray:
    """Per-row inner-product contribution of one dimension slice.

    Computed as a broadcast einsum rather than a BLAS gemv: gemm and
    gemv accumulate in different orders, so a matrix-vector product
    here would not be bitwise reproducible across batch shapes. The
    einsum reduction is the one loop the per-query and batched
    executor paths share.
    """
    base = np.asarray(base_slice, dtype=np.float64)
    query = np.asarray(query_slice, dtype=np.float64)
    return np.einsum("ij,ij->i", base, np.broadcast_to(query, base.shape))


def slice_norms(base: np.ndarray, slices: DimensionSlices) -> np.ndarray:
    """L2 norm of every base vector restricted to every slice.

    Returns an array of shape ``(n, n_slices)``; column ``j`` holds
    ``||b_i^(j)||``. Precomputed once at index build time and used by
    :func:`remaining_ip_bound`.
    """
    base = np.asarray(base, dtype=np.float64)
    out = np.empty((base.shape[0], slices.n_slices), dtype=np.float64)
    for j in range(slices.n_slices):
        out[:, j] = np.linalg.norm(slices.take(base, j), axis=1)
    return out


def query_slice_norms(
    query: np.ndarray, slices: DimensionSlices
) -> np.ndarray:
    """L2 norm of one query vector restricted to every slice.

    Computed once per query (hoisted into the executor's ``QueryState``)
    and reused by every shard scan's Cauchy-Schwarz bound.
    """
    query = np.asarray(query)
    return np.array(
        [
            float(np.linalg.norm(slices.take(query, j)))
            for j in range(slices.n_slices)
        ]
    )


#: Relative / absolute inflation applied to Cauchy-Schwarz caps: sqrt
#: rounding can place the exact bound a few ulp *below* the true dot
#: product for (anti)parallel vectors, which would make pruning lossy.
BOUND_REL_EPS = 1e-7
BOUND_ABS_EPS = 1e-12


def suffix_ip_bounds(contrib: np.ndarray) -> np.ndarray:
    """Suffix sums of per-slice Cauchy-Schwarz contributions.

    Args:
        contrib: non-negative per-candidate per-slice caps
            ``||b^(j)|| * ||q^(j)||``, shape ``(n, n_slices)``.

    Returns:
        Array of shape ``(n, n_slices + 1)`` where column ``p`` holds
        ``sum_{j >= p} contrib[:, j]`` (column ``n_slices`` is 0). A
        scan processing slices in canonical order reads its remaining
        bound directly from column ``len(done)`` instead of rebuilding
        the remaining-column set on every ``lower_bounds()`` call.
    """
    contrib = np.asarray(contrib, dtype=np.float64)
    n, m = contrib.shape
    out = np.zeros((n, m + 1), dtype=np.float64)
    out[:, :m] = np.cumsum(contrib[:, ::-1], axis=1)[:, ::-1]
    return out


def remaining_ip_bound(
    base_norms: np.ndarray,
    query_norms: np.ndarray,
    done_slices: "list[int] | tuple[int, ...]",
    n_slices: int,
) -> np.ndarray:
    """Upper bound on the inner product still obtainable from unseen slices.

    For each candidate, sums the Cauchy-Schwarz bounds
    ``||b^(j)|| * ||q^(j)||`` over the slices *not* in ``done_slices``.
    A candidate whose (accumulated dot + bound) is below the current
    top-K threshold can be pruned losslessly.

    Args:
        base_norms: per-candidate per-slice norms, shape ``(n, n_slices)``.
        query_norms: per-slice query norms, shape ``(n_slices,)``.
        done_slices: slice indices already accumulated.
        n_slices: total number of slices.

    Returns:
        Array of length ``n`` of non-negative bounds.
    """
    done = set(done_slices)
    remaining = [j for j in range(n_slices) if j not in done]
    if not remaining:
        return np.zeros(base_norms.shape[0], dtype=np.float64)
    cols = np.asarray(remaining, dtype=np.intp)
    bound = base_norms[:, cols] @ query_norms[cols]
    return bound * (1.0 + BOUND_REL_EPS) + BOUND_ABS_EPS
