"""Distance computation kernels and partial (per-dimension-block) distances.

This package implements the mathematical core that HARMONY's
dimension-level pruning relies on (paper Section 3.1):

- full-vector metrics (squared Euclidean, inner product, cosine),
- batched pairwise kernels used by the IVF index and the execution engine,
- partial distances restricted to a dimension slice, together with the
  monotone accumulation rules and the Cauchy-Schwarz bound that make
  early-stop pruning *lossless* for both L2 and inner-product search.
"""

from repro.distance.metrics import (
    Metric,
    cosine_similarity,
    inner_product,
    normalize_rows,
    resolve_metric,
    squared_l2,
)
from repro.distance.kernels import (
    pairwise_inner_product,
    pairwise_squared_l2,
    top_k_smallest,
)
from repro.distance.partial import (
    DimensionSlices,
    partial_inner_product,
    partial_squared_l2,
    remaining_ip_bound,
    slice_norms,
)

__all__ = [
    "Metric",
    "DimensionSlices",
    "cosine_similarity",
    "inner_product",
    "normalize_rows",
    "pairwise_inner_product",
    "pairwise_squared_l2",
    "partial_inner_product",
    "partial_squared_l2",
    "remaining_ip_bound",
    "resolve_metric",
    "slice_norms",
    "squared_l2",
    "top_k_smallest",
]
