"""Result caching for skewed, repeated-query serving traffic.

Public surface:

- :class:`ResultCache` — bounded, thread-safe segmented-LRU cache of
  finished top-K answers with exact (byte-identical) and opt-in
  semantic (ε-ball) hit tiers, invalidated through index/layout
  generations.
- :class:`CacheHit` / :class:`CacheStats` — lookup result and counter
  snapshot types.
- :func:`make_filter_key` — canonical hashable form of a
  ``filter_labels`` argument.

Enable it on a deployment with ``HarmonyConfig(enable_cache=True)``
(plus ``cache_size`` / ``cache_semantic_epsilon``); the CLI flags are
``--cache`` / ``--cache-size`` / ``--cache-epsilon``.
"""

from repro.cache.result_cache import (
    CACHE_LANE,
    CacheHit,
    CacheStats,
    ResultCache,
    make_filter_key,
)

__all__ = [
    "CACHE_LANE",
    "CacheHit",
    "CacheStats",
    "ResultCache",
    "make_filter_key",
]
