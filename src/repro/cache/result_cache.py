"""Bounded segmented-LRU result cache with exact and semantic hits.

Real serving traffic repeats itself: recommendation / RAG workloads
re-issue near-identical queries under a Zipf popularity law, so the
cheapest "scan" is the one that never happens. :class:`ResultCache`
memoizes finished top-K answers keyed on the full request identity —
``(query bytes, k, nprobe, metric, filter)`` — and serves them back in
two tiers:

- **exact hits**: the incoming query's float32 bytes equal a cached
  query's bytes. The cached ``(ids, distances)`` are returned
  *byte-identically*, skipping routing and scanning entirely. Exact
  hits can never change results — the key includes every input that
  influences the answer.
- **semantic hits** (opt-in, ``epsilon > 0``): the incoming query lies
  within an ε-ball (squared-L2 radius ``epsilon**2``) of a cached
  query with the same ``(k, nprobe, metric, filter)``. The cached
  *neighbor's* answer is served instead of scanning — an approximation
  whose error is bounded by ε and whose cost is a small brute-force
  scan over the cached query vectors. Every semantic hit records the
  query-to-query distance so the hit-rate / recall trade is measured,
  never silent.

Invalidation is generation-based, the same staleness protocol the
packed layouts use: every entry belongs to the
``(index uid, index version, layout generation)`` the answer was
computed under, and any mismatch — a mutation, a compaction, or a
whole new index object — atomically drops the cache and counts the
dropped entries as invalidations. Degraded / partial-coverage answers
must never be inserted (the caller enforces this; see
``HarmonyDB._cached_search``).

Capacity is a segmented LRU (the classic SLRU of Karedla et al.):
first-time entries land in a *probation* segment; a repeat hit
promotes to a *protected* segment capped at 80% of capacity. One-hit
wonders from a cold scan therefore wash through probation without
evicting the hot working set — exactly the protection a Zipf stream
needs.

All methods are thread-safe behind one lock; stored arrays are
defensive read-only copies, so callers can hold returned views across
later mutations.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

#: Fraction of capacity reserved for the protected (repeat-hit) segment.
PROTECTED_FRACTION = 0.8

#: Trace lane for ``cache-lookup`` spans (host worker threads occupy
#: lanes 1000+, the serving front end lane 3000).
CACHE_LANE = 3500


def make_filter_key(filter_labels) -> "tuple | None":
    """Canonical hashable key for a ``filter_labels`` argument.

    Order and duplicates never change the allowed-vector mask, so they
    must not fragment cache entries.
    """
    if filter_labels is None:
        return None
    labels = np.asarray(filter_labels).ravel()
    return tuple(sorted({int(x) for x in labels}))


@dataclass(frozen=True)
class CacheHit:
    """One served cache lookup.

    Attributes:
        ids / distances: the cached top-K answer (read-only arrays;
            byte-identical to the original search for exact hits).
        semantic: True when served from the ε-ball test rather than an
            exact byte match.
        distance: L2 distance from the incoming query to the cached
            query that answered it (``0.0`` for exact hits).
    """

    ids: np.ndarray
    distances: np.ndarray
    semantic: bool = False
    distance: float = 0.0


@dataclass(frozen=True)
class CacheStats:
    """Consistent counter snapshot of a :class:`ResultCache`.

    ``semantic_distance_mean`` / ``..._max`` aggregate the per-hit
    query-to-query distances, the measurable face of the ε
    approximation.
    """

    hits: int = 0
    misses: int = 0
    semantic_hits: int = 0
    evictions: int = 0
    invalidations: int = 0
    entries: int = 0
    bytes: int = 0
    semantic_distance_mean: float = 0.0
    semantic_distance_max: float = 0.0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "semantic_hits": self.semantic_hits,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "entries": self.entries,
            "bytes": self.bytes,
            "semantic_distance_mean": self.semantic_distance_mean,
            "semantic_distance_max": self.semantic_distance_max,
        }


@dataclass
class _Entry:
    """One cached answer plus everything eviction accounting needs."""

    query: np.ndarray
    ids: np.ndarray
    distances: np.ndarray
    nbytes: int


class ResultCache:
    """Thread-safe segmented-LRU cache of finished search answers.

    Args:
        max_entries: total capacity across both segments.
        epsilon: semantic hit radius (plain L2 over query embeddings);
            ``0.0`` (default) disables the semantic tier entirely —
            only exact byte matches are served, so results are
            guaranteed byte-identical to an uncached run.
    """

    def __init__(self, max_entries: int = 1024, epsilon: float = 0.0) -> None:
        if max_entries <= 0:
            raise ValueError(
                f"max_entries must be positive, got {max_entries}"
            )
        if epsilon < 0:
            raise ValueError(f"epsilon must be non-negative, got {epsilon}")
        self.max_entries = int(max_entries)
        self.epsilon = float(epsilon)
        self._protected_cap = max(
            1, int(self.max_entries * PROTECTED_FRACTION)
        )
        self._lock = threading.Lock()
        self._probation: OrderedDict[tuple, _Entry] = OrderedDict()
        self._protected: OrderedDict[tuple, _Entry] = OrderedDict()
        #: subkey (k, nprobe, metric, filter) -> {full key -> query row};
        #: the semantic tier's scan set, kept in lockstep with the
        #: segments so evicted entries can't produce ghost hits.
        self._vectors: dict[tuple, dict[tuple, np.ndarray]] = {}
        self._generation: "tuple | None" = None
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.semantic_hits = 0
        self.evictions = 0
        self.invalidations = 0
        self._semantic_distance_sum = 0.0
        self._semantic_distance_max = 0.0

    def __len__(self) -> int:
        with self._lock:
            return len(self._probation) + len(self._protected)

    # ------------------------------------------------------------------
    # Keying
    # ------------------------------------------------------------------

    @staticmethod
    def _key(
        query: np.ndarray, k: int, nprobe: int, metric: str, filter_key
    ) -> tuple:
        return (query.tobytes(), int(k), int(nprobe), str(metric), filter_key)

    @staticmethod
    def _subkey(key: tuple) -> tuple:
        return key[1:]

    # ------------------------------------------------------------------
    # Generation handling
    # ------------------------------------------------------------------

    def _check_generation(self, generation: tuple) -> None:
        """Flush everything when the index/layout generation moves
        (locked). Dropped entries count as invalidations — this is the
        mutation-invalidates-cache path, not capacity pressure."""
        if self._generation != generation:
            dropped = len(self._probation) + len(self._protected)
            if dropped:
                self.invalidations += dropped
            self._probation.clear()
            self._protected.clear()
            self._vectors.clear()
            self._bytes = 0
            self._generation = generation

    def invalidate(self) -> int:
        """Explicitly drop every entry (mutation hook). Returns the
        number of entries invalidated."""
        with self._lock:
            dropped = len(self._probation) + len(self._protected)
            if dropped:
                self.invalidations += dropped
            self._probation.clear()
            self._protected.clear()
            self._vectors.clear()
            self._bytes = 0
            self._generation = None
            return dropped

    # ------------------------------------------------------------------
    # Lookup / insert
    # ------------------------------------------------------------------

    def lookup(
        self,
        query: np.ndarray,
        k: int,
        nprobe: int,
        metric: str,
        filter_key,
        generation: tuple,
        record_miss: bool = True,
    ) -> "CacheHit | None":
        """Probe the cache for one prepared query row.

        ``query`` must already be the kernel-prepared (float32,
        cosine-normalized when applicable) row — byte identity is only
        meaningful on the exact representation the scan would consume.
        Set ``record_miss=False`` for advisory probes (the serve
        layer's pre-enqueue peek) so a later authoritative lookup
        doesn't double-count the miss.
        """
        key = self._key(query, k, nprobe, metric, filter_key)
        with self._lock:
            self._check_generation(generation)
            entry = self._probation.pop(key, None)
            if entry is not None:
                # Probation hit: promote into the protected segment.
                self._admit_protected(key, entry)
                self.hits += 1
                return CacheHit(ids=entry.ids, distances=entry.distances)
            entry = self._protected.get(key)
            if entry is not None:
                self._protected.move_to_end(key)
                self.hits += 1
                return CacheHit(ids=entry.ids, distances=entry.distances)
            if self.epsilon > 0.0:
                hit = self._semantic_lookup(key, query)
                if hit is not None:
                    return hit
            if record_miss:
                self.misses += 1
        return None

    def _semantic_lookup(
        self, key: tuple, query: np.ndarray
    ) -> "CacheHit | None":
        """ε-ball scan over cached query vectors (locked).

        Brute force over the (bounded, small) cached set: ties break
        toward the nearest cached query, then insertion order.
        """
        pool = self._vectors.get(self._subkey(key))
        if not pool:
            return None
        keys = list(pool.keys())
        stacked = np.stack([pool[k] for k in keys])
        deltas = stacked - query[None, :]
        d2 = np.einsum("ij,ij->i", deltas, deltas)
        best = int(np.argmin(d2))
        best_d2 = float(d2[best])
        if best_d2 > self.epsilon * self.epsilon:
            return None
        neighbor_key = keys[best]
        entry = self._probation.pop(neighbor_key, None)
        if entry is not None:
            self._admit_protected(neighbor_key, entry)
        else:
            entry = self._protected.get(neighbor_key)
            if entry is None:
                return None
            self._protected.move_to_end(neighbor_key)
        distance = float(np.sqrt(best_d2))
        self.hits += 1
        self.semantic_hits += 1
        self._semantic_distance_sum += distance
        self._semantic_distance_max = max(
            self._semantic_distance_max, distance
        )
        return CacheHit(
            ids=entry.ids,
            distances=entry.distances,
            semantic=True,
            distance=distance,
        )

    def insert(
        self,
        query: np.ndarray,
        k: int,
        nprobe: int,
        metric: str,
        filter_key,
        generation: tuple,
        ids: np.ndarray,
        distances: np.ndarray,
    ) -> None:
        """Cache one finished answer.

        Callers must not insert degraded / partial-coverage answers —
        those are wrong to replay once the cluster heals.
        """
        key = self._key(query, k, nprobe, metric, filter_key)
        query = np.array(query, dtype=np.float32, copy=True)
        ids = np.array(ids, copy=True)
        distances = np.array(distances, copy=True)
        for arr in (query, ids, distances):
            arr.setflags(write=False)
        entry = _Entry(
            query=query,
            ids=ids,
            distances=distances,
            nbytes=int(query.nbytes + ids.nbytes + distances.nbytes),
        )
        with self._lock:
            self._check_generation(generation)
            if key in self._probation or key in self._protected:
                return
            while (
                len(self._probation) + len(self._protected)
                >= self.max_entries
            ):
                self._evict_one()
            self._probation[key] = entry
            self._vectors.setdefault(self._subkey(key), {})[key] = query
            self._bytes += entry.nbytes

    # ------------------------------------------------------------------
    # Internal bookkeeping (all locked)
    # ------------------------------------------------------------------

    def _admit_protected(self, key: tuple, entry: _Entry) -> None:
        """Promote a probation hit; overflow demotes the protected LRU
        back to probation (its recency restarts) instead of evicting."""
        self._protected[key] = entry
        self._protected.move_to_end(key)
        while len(self._protected) > self._protected_cap:
            demoted_key, demoted = self._protected.popitem(last=False)
            self._probation[demoted_key] = demoted

    def _evict_one(self) -> None:
        """Drop the best eviction victim: probation LRU first."""
        if self._probation:
            key, entry = self._probation.popitem(last=False)
        elif self._protected:
            key, entry = self._protected.popitem(last=False)
        else:
            return
        self.evictions += 1
        self._bytes -= entry.nbytes
        subkey = self._subkey(key)
        pool = self._vectors.get(subkey)
        if pool is not None:
            pool.pop(key, None)
            if not pool:
                del self._vectors[subkey]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self.hits,
                misses=self.misses,
                semantic_hits=self.semantic_hits,
                evictions=self.evictions,
                invalidations=self.invalidations,
                entries=len(self._probation) + len(self._protected),
                bytes=self._bytes,
                semantic_distance_mean=(
                    self._semantic_distance_sum / self.semantic_hits
                    if self.semantic_hits
                    else 0.0
                ),
                semantic_distance_max=self._semantic_distance_max,
            )

    def clear(self) -> None:
        """Drop all entries without touching counters (test helper)."""
        with self._lock:
            self._probation.clear()
            self._protected.clear()
            self._vectors.clear()
            self._bytes = 0
            self._generation = None
