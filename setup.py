"""Setuptools shim.

Allows ``pip install -e . --no-use-pep517`` (and plain ``python
setup.py develop``) in offline environments that lack the ``wheel``
package required by PEP 517 editable builds. All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
